package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func makeDataset(t *testing.T, consumers, days int) *timeseries.Dataset {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunMatchesReference(t *testing.T) {
	ds := makeDataset(t, 6, 30)
	for _, task := range core.Tasks {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("%v_w%d", task, workers), func(t *testing.T) {
				spec := core.Spec{Task: task, K: 3, Workers: workers}
				got, err := Run(NewDatasetSource(ds), spec)
				if err != nil {
					t.Fatal(err)
				}
				want, err := core.RunReference(ds, spec)
				if err != nil {
					t.Fatal(err)
				}
				if got.Count() != want.Count() {
					t.Fatalf("count = %d, want %d", got.Count(), want.Count())
				}
				compareResults(t, got, want)
			})
		}
	}
}

// compareResults checks bit-identical agreement with the reference.
func compareResults(t *testing.T, got, want *core.Results) {
	t.Helper()
	cursortest.CompareResults(t, got, want)
}

func TestRunPopulatesPhases(t *testing.T) {
	ds := makeDataset(t, 5, 20)
	res, err := Run(NewDatasetSource(ds), core.Spec{Task: core.TaskThreeLine})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases
	if ph == nil {
		t.Fatal("Phases == nil")
	}
	if ph.Extract.Rows != 5 || ph.Compute.Rows != 5 || ph.Emit.Rows != 5 {
		t.Errorf("row counters = %d/%d/%d, want 5/5/5",
			ph.Extract.Rows, ph.Compute.Rows, ph.Emit.Rows)
	}
	wantBytes := int64(5 * 20 * 24 * 8)
	if ph.Extract.Bytes != wantBytes {
		t.Errorf("extract bytes = %d, want %d", ph.Extract.Bytes, wantBytes)
	}
	if ph.T1Quantiles+ph.T2Regression+ph.T3Adjust <= 0 {
		t.Error("3-line sub-phase timings are all zero")
	}
	if ph.Total() < ph.Compute.Wall {
		t.Errorf("Total %v < Compute %v", ph.Total(), ph.Compute.Wall)
	}
}

func TestRunSimilarityPhases(t *testing.T) {
	ds := makeDataset(t, 6, 20)
	res, err := Run(NewDatasetSource(ds), core.Spec{Task: core.TaskSimilarity, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases == nil || res.Phases.Extract.Rows != 6 || res.Phases.Emit.Rows != 6 {
		t.Fatalf("similarity phases = %+v", res.Phases)
	}
	if len(res.Similar) != 6 {
		t.Fatalf("similar results = %d", len(res.Similar))
	}
}

func TestRunUnknownTask(t *testing.T) {
	ds := makeDataset(t, 3, 10)
	if _, err := Run(NewDatasetSource(ds), core.Spec{Task: core.Task(99)}); err == nil {
		t.Fatal("unknown task did not error")
	}
}

// hintedSource wraps a Source with a fixed ParallelHint.
type hintedSource struct {
	Source
	hint int
	seen *int
}

func (h hintedSource) ParallelHint() int {
	*h.seen++
	return h.hint
}

func TestParallelHintOnlyWhenWorkersUnset(t *testing.T) {
	ds := makeDataset(t, 4, 10)
	var calls int
	src := hintedSource{Source: NewDatasetSource(ds), hint: 8, seen: &calls}

	if _, err := Run(src, core.Spec{Task: core.TaskHistogram}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("hint not consulted for unset Workers")
	}
	calls = 0
	if _, err := Run(src, core.Spec{Task: core.TaskHistogram, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Error("hint consulted despite explicit Workers")
	}
}

func TestBlockFor(t *testing.T) {
	for _, tc := range []struct{ workers, want int }{
		{1, 16}, {2, 16}, {4, 16}, {8, 32}, {16, 64},
	} {
		if got := blockFor(tc.workers); got != tc.want {
			t.Errorf("blockFor(%d) = %d, want %d", tc.workers, got, tc.want)
		}
	}
}

func TestDatasetCursorConformance(t *testing.T) {
	ds := makeDataset(t, 5, 10)
	cursortest.Run(t, func(t *testing.T) core.Cursor {
		return core.NewDatasetCursor(ds)
	})
}

func TestLazyCursorConformance(t *testing.T) {
	ds := makeDataset(t, 5, 10)
	cursortest.Run(t, func(t *testing.T) core.Cursor {
		return core.NewLazyCursor(func(context.Context) ([]*timeseries.Series, error) {
			return ds.Series, nil
		}, nil)
	})
}

func TestLazyCursorLoadOnceAndOnClose(t *testing.T) {
	ds := makeDataset(t, 3, 10)
	loads, closes := 0, 0
	cur := core.NewLazyCursor(func(context.Context) ([]*timeseries.Series, error) {
		loads++
		return ds.Series, nil
	}, func() { closes++ })
	for i := 0; i < 3; i++ {
		if _, err := cur.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cur.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("load ran %d times, want 1", loads)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if closes != 1 {
		t.Fatalf("onClose ran %d times, want 1", closes)
	}
}

// failingSource returns an error from NewCursor.
type failingSource struct{ err error }

func (f failingSource) NewCursor() (core.Cursor, error)               { return nil, f.err }
func (f failingSource) Temperature() (*timeseries.Temperature, error) { return nil, f.err }

func TestRunPropagatesCursorError(t *testing.T) {
	want := errors.New("boom")
	if _, err := Run(failingSource{err: want}, core.Spec{Task: core.TaskHistogram}); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

// The chaos conformance suite in cursortest cannot import exec (exec's own
// tests import cursortest), so it pins the retry budget as a constant. Keep
// the two in lock-step.
func TestRetryBudgetMatchesCursortest(t *testing.T) {
	if cursortest.RetryBudget != ExtractAttempts {
		t.Fatalf("cursortest.RetryBudget = %d, exec.ExtractAttempts = %d; update cursortest.RetryBudget",
			cursortest.RetryBudget, ExtractAttempts)
	}
}
