package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// This file is the overlapped extraction path: when an engine exposes
// disjoint partition cursors (core.PartitionedSource) and the spec asks
// for more than one worker on a streaming task, Run hands the cursors to
// runPrefetch instead of the serial loop. One decode goroutine per
// partition drains its cursor into a bounded channel of series blocks;
// compute workers consume blocks as they land, so decode and kernel time
// overlap instead of alternating. A reorder stage keyed by household ID
// restores cursor order, keeping every engine bit-identical to
// core.RunReference.
//
// Memory stays flat: the channel holds at most two blocks per partition
// (double buffering — one being filled, one in flight), so a fully
// backed-up pipeline pins O(partitions × block) series, the same order
// of residency as the serial path's single block times the worker count.
//
// Phase accounting moves from the serial stopwatch to per-goroutine
// busy-time accumulators: each decode goroutine owns one slot of the
// extract accumulators, each worker one slot of the compute
// accumulators, and the sums are gathered only after the WaitGroup
// joins. Under overlap the summed busy time legitimately exceeds the
// Run's elapsed wall clock — that surplus is the measured overlap.
//
// Failure containment composes with the overlap: each decode goroutine
// runs the same retry/quarantine/repair logic as the serial fill (the
// shared contain collector is mutex-guarded), a panic in a decode
// goroutine or compute worker is recovered into the shared error slot
// instead of killing the process, and cancelling the run context closes
// the stop channel path so every goroutine parks out promptly.

// prefetchBlock is one extracted block in flight from a partition's
// decode goroutine to the compute workers.
type prefetchBlock struct {
	part, seq int
	series    []*timeseries.Series
}

// computedBlock is one block's kernel output, tagged with its origin for
// the deterministic reorder in emit. Quarantined consumers leave nil
// slots.
type computedBlock struct {
	part, seq int
	hists     []*histogram.Result
	lines     []*threeline.Result
	profs     []*par.Result
}

// runPrefetch drives the overlapped pipeline over the partition cursors.
// It takes ownership of every cursor in curs and closes them all, and
// returns only after every goroutine it started has exited.
func runPrefetch(ctx context.Context, curs []core.Cursor, temp *timeseries.Temperature, spec core.Spec, workers int, out *core.Results, cn *contain) error {
	switch spec.Task {
	case core.TaskHistogram, core.TaskThreeLine, core.TaskPAR:
	default:
		for _, c := range curs {
			_ = c.Close()
		}
		return fmt.Errorf("exec: unknown task %v", spec.Task)
	}
	ph := out.Phases
	nparts := len(curs)
	block := blockFor(workers)

	// Double-buffered and backpressured: a decode goroutine that gets two
	// blocks ahead of compute parks on the send instead of decoding on.
	blocks := make(chan prefetchBlock, 2*nparts)
	stop := make(chan struct{})
	var (
		failOnce sync.Once
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failOnce.Do(func() { close(stop) })
	}
	// Cancellation rides the same shutdown path as an error: the watcher
	// goroutine turns ctx.Done into a stop, and is itself released via
	// watchDone when the pipeline drains normally.
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-stop:
		case <-watchDone:
		}
	}()

	// Per-goroutine accumulators: slot p belongs to decode goroutine p,
	// slot w to compute worker w. No slot is shared, so the writes need
	// no locks; the sums below happen after the joins.
	extractBusy := make([]time.Duration, nparts)
	extractRows := make([]int64, nparts)
	extractBytes := make([]int64, nparts)

	var extractWG sync.WaitGroup
	for p, cur := range curs {
		extractWG.Add(1)
		go func(p int, cur core.Cursor) {
			defer extractWG.Done()
			defer func() { _ = cur.Close() }()
			// A panic while decoding (a corrupt segment image, a buggy
			// parser) must release the pipeline, not deadlock it: convert
			// it to the run's first error so compute drains and joins.
			defer func() {
				if v := recover(); v != nil {
					fail(core.NewPanicError(v))
				}
			}()
			seq := 0
			for {
				// Fresh buffer per block: the previous one is owned by
				// whichever worker picked it up.
				buf := make([]*timeseries.Series, 0, block)
				t0 := time.Now()
				drained, err := fill(ctx, cur, &buf, block, cn)
				extractBusy[p] += time.Since(t0)
				if err != nil {
					fail(err)
					return
				}
				extractRows[p] += int64(len(buf))
				extractBytes[p] += seriesBytes(buf)
				if len(buf) > 0 {
					select {
					case blocks <- prefetchBlock{part: p, seq: seq, series: buf}:
						seq++
					case <-stop:
						return
					}
				}
				if drained {
					return
				}
			}
		}(p, cur)
	}
	go func() {
		extractWG.Wait()
		close(blocks)
	}()

	computeBusy := make([]time.Duration, workers)
	computeRows := make([]int64, workers)
	tims := make([]threeline.Timing, workers)
	var (
		computed   []computedBlock
		computedMu sync.Mutex
		computeWG  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		computeWG.Add(1)
		go func(w int) {
			defer computeWG.Done()
			// Backstop for panics outside the per-kernel guards: keep
			// draining so parked decode goroutines always get their send
			// or the stop.
			defer func() {
				if v := recover(); v != nil {
					fail(core.NewPanicError(v))
					for range blocks { //nolint:revive // draining
					}
				}
			}()
			for blk := range blocks {
				select {
				case <-stop:
					// Keep draining without computing so parked decode
					// goroutines always get their send or the stop.
					continue
				default:
				}
				t0 := time.Now()
				cb, err := computeBlockSerial(blk, temp, spec, &tims[w], cn)
				computeBusy[w] += time.Since(t0)
				if err != nil {
					fail(err)
					continue
				}
				computeRows[w] += int64(len(blk.series))
				computedMu.Lock()
				computed = append(computed, cb)
				computedMu.Unlock()
			}
		}(w)
	}
	computeWG.Wait()
	close(watchDone)
	watchWG.Wait()
	// All decode goroutines finished before blocks closed, and every
	// worker finished before Wait returned, so firstErr and the
	// accumulators are safely visible here.
	if firstErr != nil {
		return firstErr
	}

	for p := 0; p < nparts; p++ {
		ph.Extract.Wall += extractBusy[p]
		ph.Extract.Rows += extractRows[p]
		ph.Extract.Bytes += extractBytes[p]
	}
	for w := 0; w < workers; w++ {
		ph.Compute.Wall += computeBusy[w]
		ph.Compute.Rows += computeRows[w]
		ph.T1Quantiles += tims[w].T1Quantiles
		ph.T2Regression += tims[w].T2Regression
		ph.T3Adjust += tims[w].T3Adjust
	}

	start := time.Now()
	sort.Slice(computed, func(i, j int) bool {
		if computed[i].part != computed[j].part {
			return computed[i].part < computed[j].part
		}
		return computed[i].seq < computed[j].seq
	})
	for _, cb := range computed {
		for _, r := range cb.hists {
			if r != nil {
				out.Histograms = append(out.Histograms, r)
			}
		}
		for _, r := range cb.lines {
			if r != nil {
				out.ThreeLines = append(out.ThreeLines, r)
			}
		}
		for _, r := range cb.profs {
			if r != nil {
				out.Profiles = append(out.Profiles, r)
			}
		}
	}
	// Partition-major concatenation is already ascending for engines with
	// ID-contiguous shards (file, row, column stores); the cluster
	// engines hand out hash partitions whose ID ranges interleave, so the
	// reorder keyed by household ID restores the reference order for
	// everyone. IsSorted keeps the common case a single cheap pass.
	sortResultsByID(out)
	ph.Emit.Wall += time.Since(start)
	ph.Emit.Rows += int64(out.Count())
	return nil
}

// computeBlockSerial runs the per-consumer kernel over one block on the
// calling worker goroutine. Parallelism comes from multiple workers
// holding different blocks, not from fan-out within a block. Kernel
// errors and panics follow the fail policy: quarantined consumers leave
// nil slots in the computed block.
func computeBlockSerial(blk prefetchBlock, temp *timeseries.Temperature, spec core.Spec, tim *threeline.Timing, cn *contain) (computedBlock, error) {
	cb := computedBlock{part: blk.part, seq: blk.seq}
	switch spec.Task {
	case core.TaskHistogram:
		cb.hists = make([]*histogram.Result, len(blk.series))
		for i, s := range blk.series {
			r, err := safeBuckets(s, spec.Buckets)
			if err != nil {
				if err := cn.computeErr(s.ID, err); err != nil {
					return cb, err
				}
				continue
			}
			cb.hists[i] = r
		}
	case core.TaskThreeLine:
		cb.lines = make([]*threeline.Result, len(blk.series))
		for i, s := range blk.series {
			r, tm, err := safeThreeLine(s, temp)
			if err != nil {
				if err := cn.computeErr(s.ID, err); err != nil {
					return cb, err
				}
				continue
			}
			tim.T1Quantiles += tm.T1Quantiles
			tim.T2Regression += tm.T2Regression
			tim.T3Adjust += tm.T3Adjust
			cb.lines[i] = r
		}
	case core.TaskPAR:
		cb.profs = make([]*par.Result, len(blk.series))
		for i, s := range blk.series {
			r, err := safePAR(s, temp, spec.Order)
			if err != nil {
				if err := cn.computeErr(s.ID, err); err != nil {
					return cb, err
				}
				continue
			}
			cb.profs[i] = r
		}
	}
	return cb, nil
}

// sortResultsByID restores ascending household-ID order — the order the
// Cursor contract fixes for serial extraction and core.RunReference
// produces.
func sortResultsByID(out *core.Results) {
	switch out.Task {
	case core.TaskHistogram:
		rs := out.Histograms
		less := func(i, j int) bool { return rs[i].ID < rs[j].ID }
		if !sort.SliceIsSorted(rs, less) {
			sort.Slice(rs, less)
		}
	case core.TaskThreeLine:
		rs := out.ThreeLines
		less := func(i, j int) bool { return rs[i].ID < rs[j].ID }
		if !sort.SliceIsSorted(rs, less) {
			sort.Slice(rs, less)
		}
	case core.TaskPAR:
		rs := out.Profiles
		less := func(i, j int) bool { return rs[i].ID < rs[j].ID }
		if !sort.SliceIsSorted(rs, less) {
			sort.Slice(rs, less)
		}
	}
}
