package exec

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Compressed-domain PAR fast path.
//
// PAR regresses each hour of the day on its own lagged values, so the
// kernel needs the exact series — per-hour sums cannot substitute for
// it (summing a lane per block and adding lanes across blocks changes
// float association, and the AR lags need individual days anyway).
// What the block headers CAN do is reconstruct many blocks bit-exactly
// without touching the compressed payload:
//
//   - BlockConstant: every row carries the header's Min bit pattern
//     (Summarize's min fold is first-attainer, so a bit-constant block
//     reports the constant itself, including -0.0).
//   - Count <= 24 with lanes: each hour of day occurs at most once in
//     the block, so the first-assignment lane sums ARE the row values.
//   - BlockHourPeriodic: the encoder stored the 24-value tile verbatim
//     in the lane section; tiling it reproduces the block.
//
// Blocks with NaNs (no lanes) or aperiodic multi-day content decode
// through DecodeBlock as usual. Either way the assembled series feeds
// the unchanged runStreaming/safePAR pipeline, so results AND errors —
// length mismatches, short series, singular fits — are bit-identical
// to the generic cursor path, and compute still fans out over workers.
//
// The gate mirrors the histogram fast path: FailFast only (fault
// wrappers don't forward SummarySource; Quarantine/Repair must observe
// extraction faults through the normal cursors).

// summaryPARApplies reports whether the PAR fast path is eligible.
func summaryPARApplies(src Source, spec core.Spec) (core.SummarySource, bool) {
	if spec.Task != core.TaskPAR || spec.FailPolicy != core.FailFast {
		return nil, false
	}
	ss, ok := src.(core.SummarySource)
	return ss, ok
}

// runPARSummaries drives the ordinary streaming pipeline from a
// summary-assembly cursor instead of the engine's row cursor.
func runPARSummaries(ctx context.Context, ss core.SummarySource, temp *timeseries.Temperature, spec core.Spec, workers int, out *core.Results, cn *contain) error {
	ph := out.Phases
	start := time.Now()
	sc, err := ss.NewSummaryCursor()
	ph.Extract.Wall += time.Since(start)
	if err != nil {
		return err
	}
	cur := &summaryAssemblyCursor{sc: sc, ph: ph}
	defer func() { _ = cur.Close() }()
	core.BindContext(cur, ctx)
	return runStreaming(ctx, cur, temp, spec, workers, out, cn)
}

// summaryAssemblyCursor adapts a SummaryCursor to core.Cursor by
// reconstructing each consumer's full series from block summaries,
// decoding only the blocks the headers cannot reproduce. Every Next
// returns a fresh row buffer: the streaming pipeline holds a block of
// series across the compute fan-out.
type summaryAssemblyCursor struct {
	sc     core.SummaryCursor
	ph     *core.Phases
	ctx    context.Context
	lanes  core.HourLanes
	closed bool
}

func (c *summaryAssemblyCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *summaryAssemblyCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed {
		return nil, io.EOF
	}
	id, blocks, err := c.sc.NextSummary()
	if err != nil {
		return nil, err // io.EOF included
	}
	row := make([]float64, seriesLen(blocks))
	for b, bs := range blocks {
		if bs.Count == 0 {
			continue
		}
		dst := row[bs.Start : bs.Start+bs.Count]
		ok, err := c.assemble(b, bs, dst)
		if err != nil {
			return nil, err
		}
		if ok {
			c.ph.SummaryBlocks++
			continue
		}
		if err := c.sc.DecodeBlock(b, dst); err != nil {
			return nil, err
		}
		c.ph.DecodedBlocks++
	}
	return &timeseries.Series{ID: id, Readings: row}, nil
}

// assemble reconstructs one block from its header and lane section
// without decoding the value payload, reporting false when the block's
// flags cannot pin every row bit-exactly.
func (c *summaryAssemblyCursor) assemble(b int, bs core.BlockStats, dst []float64) (bool, error) {
	f := bs.Flags
	if f&core.BlockConstant != 0 {
		for i := range dst {
			dst[i] = bs.Min
		}
		return true, nil
	}
	if f&core.BlockHourPeriodic != 0 {
		ok, err := c.sc.HourLanes(b, &c.lanes)
		if err != nil || !ok {
			return false, err
		}
		for i := range dst {
			dst[i] = c.lanes.Pattern[(bs.Start+i)%24]
		}
		return true, nil
	}
	if f&core.BlockHourLanes != 0 && bs.Count <= 24 {
		ok, err := c.sc.HourLanes(b, &c.lanes)
		if err != nil || !ok {
			return false, err
		}
		// First-assignment semantics: with at most one row per hour,
		// Sums[h] holds that row's exact bits (-0.0 survives).
		for i := range dst {
			dst[i] = c.lanes.Sums[(bs.Start+i)%24]
		}
		return true, nil
	}
	return false, nil
}

func (c *summaryAssemblyCursor) Reset() error {
	return fmt.Errorf("exec: summary assembly cursor cannot rewind")
}

func (c *summaryAssemblyCursor) Close() error {
	c.closed = true
	return c.sc.Close()
}
