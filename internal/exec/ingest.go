package exec

import (
	"context"
	"fmt"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Live ingestion plumbing. An Ingestor is the single entry point for a
// committed reading stream: it appends each batch to the storage
// engine first, then fans the batch out to the registered sinks
// (stream detectors, incremental analytics). Storage commits before
// sinks observe, so a sink can always resolve what it sees against a
// storage snapshot at the same or a later epoch. Everything rides the
// core.Appender ordering contract: per-household in-order and
// gap-free, redelivered hours skipped idempotently — which is what
// makes the retry loop safe: a batch that failed half-way can be
// re-offered in full and applies exactly once.
//
// When the store runs with a write-ahead log (colstore/rowstore
// WithWAL), a nil Append return is a durability ack under the engine's
// fsync policy: wal.SyncAlways and wal.SyncBatch guarantee the batch
// survives a crash before the caller sees nil, wal.SyncOff only that
// it was framed into the OS page cache. Redelivered batches are
// re-logged in full before they re-ack — a retry's ack must never
// promise durability the log cannot replay — and recovery feeds the
// log back through the same idempotent append path, so the
// exactly-once story holds across restarts too.

// ReadingSink consumes committed reading batches. Implementations are
// driven serially by the Ingestor that owns them.
type ReadingSink interface {
	Consume(batch []core.Reading) error
}

// SinkFunc adapts a plain function to ReadingSink.
type SinkFunc func(batch []core.Reading) error

// Consume implements ReadingSink.
func (f SinkFunc) Consume(batch []core.Reading) error { return f(batch) }

// Ingestor commits batches to storage, then fans them out to sinks.
type Ingestor struct {
	// Store receives every batch first. Required.
	Store core.Appender
	// Sinks observe each batch after the store committed it.
	Sinks []ReadingSink
	// Attempts is the per-stage retry budget for transient errors
	// (default ExtractAttempts, matching the extraction pipeline).
	Attempts int
}

// Ingest delivers one batch: store first, then each sink in order,
// each stage retried with the pipeline's backoff schedule. An error
// after the store committed does not roll storage back — the caller
// may re-offer the batch; dedup makes that exactly-once.
func (in *Ingestor) Ingest(ctx context.Context, batch []core.Reading) error {
	if in.Store == nil {
		return fmt.Errorf("exec: ingestor has no store")
	}
	if err := in.deliver(ctx, "store", in.Store.Append, batch); err != nil {
		return err
	}
	for i, s := range in.Sinks {
		if err := in.deliver(ctx, fmt.Sprintf("sink %d", i), s.Consume, batch); err != nil {
			return err
		}
	}
	return nil
}

// deliver offers the batch to one stage with retries. Re-offering the
// full batch on retry is safe because every Appender/sink skips
// already-committed hours.
func (in *Ingestor) deliver(ctx context.Context, stage string, f func([]core.Reading) error, batch []core.Reading) error {
	attempts := in.Attempts
	if attempts <= 0 {
		attempts = ExtractAttempts
	}
	var err error
	for try := 1; try <= attempts; try++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = f(batch); err == nil {
			return nil
		}
		if try < attempts {
			if serr := sleepCtx(ctx, retryBackoff(try)); serr != nil {
				return serr
			}
		}
	}
	return fmt.Errorf("exec: ingest %s failed after %d attempts: %w", stage, attempts, err)
}

// RunSnapshot executes one task over a read-isolated snapshot of an
// append-driven engine, without pausing ingestion: concurrent Appends
// land in epochs the snapshot cursor never observes. The snapshot's
// epoch is returned so callers can tag results with their freshness.
// The extraction is serial (snapshots expose one cursor); Spec.Workers
// still parallelizes compute.
func RunSnapshot(ctx context.Context, app core.Appender, spec core.Spec) (*core.Results, core.Epoch, error) {
	cur, epoch, err := app.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	res, err := RunContext(ctx, snapshotSource{cur: cur}, spec)
	if err != nil {
		_ = cur.Close()
		return nil, epoch, err
	}
	return res, epoch, nil
}

// snapshotSource adapts a snapshot cursor to the pipeline Source. The
// temperature column comes from the snapshot itself
// (core.SnapshotTemperature), not the engine, so it is as isolated as
// the readings.
type snapshotSource struct {
	cur core.Cursor
}

func (s snapshotSource) NewCursor() (core.Cursor, error) { return s.cur, nil }

func (s snapshotSource) Temperature() (*timeseries.Temperature, error) {
	if st, ok := s.cur.(core.SnapshotTemperature); ok {
		return st.SnapshotTemp(), nil
	}
	return nil, fmt.Errorf("exec: snapshot cursor %T exposes no temperature", s.cur)
}
