package exec

import (
	"context"
	"errors"
	"io"
	"math"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Compressed-domain histogram fast path.
//
// When the source keeps per-block (min, max, count) summaries
// (core.SummarySource — the column store's segment headers), the
// histogram task can often skip decoding entirely: the range comes from
// folding block min/max in block order (bit-identical to the
// stats.MinMax scan for NaN-free series, since both use first-attainer
// < and >), and any block whose min and max land in the same bucket
// contributes Count to that bucket exactly (stats.Histogram.Bucket is
// monotone non-decreasing). Only straddling blocks decode raw floats.
//
// The path is gated to FailFast: Quarantine/Repair runs must observe
// per-consumer extraction faults through the normal cursor pipeline,
// and fault wrappers deliberately do not forward SummarySource. Any
// consumer with NaNs, non-finite extrema or no rows falls back to a
// full decode through the same safeBuckets kernel the pipeline uses, so
// results AND errors stay bit-identical to the decoded-oracle path.
//
// Living in exec rather than the engine keeps the enginelayering rule
// intact: engines expose storage traits; task knowledge stays here.

// summaryHistogramApplies reports whether the fast path is eligible.
func summaryHistogramApplies(src Source, spec core.Spec) (core.SummarySource, bool) {
	if spec.Task != core.TaskHistogram || spec.FailPolicy != core.FailFast {
		return nil, false
	}
	ss, ok := src.(core.SummarySource)
	return ss, ok
}

// runHistogramSummaries executes the histogram task over block
// summaries. Result order is ascending household ID, same as every
// other path.
func runHistogramSummaries(ctx context.Context, ss core.SummarySource, spec core.Spec, out *core.Results) error {
	ph := out.Phases
	start := time.Now()
	sc, err := ss.NewSummaryCursor()
	ph.Extract.Wall += time.Since(start)
	if err != nil {
		return err
	}
	defer func() { _ = sc.Close() }()

	var decodeBuf []float64
	var series timeseries.Series // reused for fallback consumers
	for {
		if err := core.CtxErr(ctx); err != nil {
			return err
		}
		start = time.Now()
		id, blocks, err := sc.NextSummary()
		ph.Extract.Wall += time.Since(start)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		ph.Extract.Rows++

		if summaryNeedsDecode(blocks) {
			// Assemble the full series and run the ordinary kernel so
			// NaN propagation, empty-series errors and bucket edges are
			// decided by exactly the code the slow path runs.
			start = time.Now()
			n := seriesLen(blocks)
			if cap(decodeBuf) < n {
				decodeBuf = make([]float64, n)
			}
			full := decodeBuf[:n]
			for b, bs := range blocks {
				if bs.Count == 0 {
					continue
				}
				if err := sc.DecodeBlock(b, full[bs.Start:bs.Start+bs.Count]); err != nil {
					return err
				}
				ph.DecodedBlocks++
			}
			ph.Extract.Wall += time.Since(start)
			ph.Extract.Bytes += int64(8 * n)
			series = timeseries.Series{ID: id, Readings: full}
			start = time.Now()
			r, err := safeBuckets(&series, spec.Buckets)
			ph.Compute.Wall += time.Since(start)
			ph.Compute.Rows++
			if err != nil {
				return err // FailFast: first failure aborts the run
			}
			// The reused decode buffer must not escape into results.
			r.Histogram = cloneHistogram(r.Histogram)
			emitHistogram(out, r)
			continue
		}

		start = time.Now()
		var gmin, gmax float64
		first := true
		for _, bs := range blocks {
			if bs.Count == 0 {
				continue
			}
			if first {
				gmin, gmax = bs.Min, bs.Max
				first = false
				continue
			}
			if bs.Min < gmin {
				gmin = bs.Min
			}
			if bs.Max > gmax {
				gmax = bs.Max
			}
		}
		h := &stats.Histogram{Min: gmin, Max: gmax, Counts: make([]int64, spec.Buckets)}
		for b, bs := range blocks {
			if bs.Count == 0 {
				continue
			}
			if h.Bucket(bs.Min) == h.Bucket(bs.Max) {
				// Bucket is monotone in its argument, so min and max
				// sharing a bucket pins every value of the block there.
				h.AddN(bs.Min, int64(bs.Count))
				ph.SummaryBlocks++
				continue
			}
			if cap(decodeBuf) < bs.Count {
				decodeBuf = make([]float64, bs.Count)
			}
			blk := decodeBuf[:bs.Count]
			if err := sc.DecodeBlock(b, blk); err != nil {
				return err
			}
			ph.DecodedBlocks++
			ph.Extract.Bytes += int64(8 * bs.Count)
			for _, v := range blk {
				h.Add(v)
			}
		}
		ph.Compute.Wall += time.Since(start)
		ph.Compute.Rows++
		emitHistogram(out, &histogram.Result{ID: id, Histogram: h})
	}
}

// summaryNeedsDecode reports whether a consumer must take the full
// decode fallback: any NaNs (the summary skipped them; the kernel must
// see them), non-finite extrema (bucket arithmetic overflows), or an
// empty series (the kernel owns the ErrEmptyInput contract).
func summaryNeedsDecode(blocks []core.BlockStats) bool {
	total := 0
	for _, bs := range blocks {
		if bs.NaNs > 0 {
			return true
		}
		if bs.Count > 0 && (math.IsInf(bs.Min, 0) || math.IsInf(bs.Max, 0)) {
			return true
		}
		total += bs.Count
	}
	return total == 0
}

func seriesLen(blocks []core.BlockStats) int {
	n := 0
	for _, bs := range blocks {
		if end := bs.Start + bs.Count; end > n {
			n = end
		}
	}
	return n
}

func cloneHistogram(h *stats.Histogram) *stats.Histogram {
	return &stats.Histogram{
		Min:    h.Min,
		Max:    h.Max,
		Counts: append([]int64(nil), h.Counts...),
	}
}

func emitHistogram(out *core.Results, r *histogram.Result) {
	ph := out.Phases
	start := time.Now()
	out.Histograms = append(out.Histograms, r)
	ph.Emit.Wall += time.Since(start)
	ph.Emit.Rows++
}
