package fault

import (
	"context"
	"fmt"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Source is what the injector wraps: structurally identical to
// exec.Source, so every core.Engine (and exec.NewDatasetSource)
// satisfies it.
type Source interface {
	NewCursor() (core.Cursor, error)
	Temperature() (*timeseries.Temperature, error)
}

// Injector wraps a source so that every cursor it hands out injects the
// configured faults. It satisfies exec.Source, and it forwards
// core.PartitionedSource when the wrapped source supports it (each
// partition cursor injects independently; fault decisions stay per-ID,
// so the injured set is identical on the serial and overlapped paths).
type Injector struct {
	src Source
	cfg Config
}

// New wraps src with fault injection under cfg.
func New(src Source, cfg Config) *Injector {
	return &Injector{src: src, cfg: cfg}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// NewCursor implements the exec source contract, wrapping the
// underlying cursor with fault injection.
func (in *Injector) NewCursor() (core.Cursor, error) {
	cur, err := in.src.NewCursor()
	if err != nil {
		return nil, err
	}
	return WrapCursor(cur, in.cfg), nil
}

// NewCursors implements core.PartitionedSource by wrapping each
// underlying partition cursor. A source without partition support
// yields a single wrapped cursor — the pipeline's serial fallback.
func (in *Injector) NewCursors(max int) ([]core.Cursor, error) {
	if max < 1 {
		return nil, fmt.Errorf("fault: NewCursors: max must be >= 1, got %d", max)
	}
	ps, ok := in.src.(core.PartitionedSource)
	if !ok {
		cur, err := in.NewCursor()
		if err != nil {
			return nil, err
		}
		return []core.Cursor{cur}, nil
	}
	curs, err := ps.NewCursors(max)
	if err != nil {
		return nil, err
	}
	wrapped := make([]core.Cursor, len(curs))
	for i, c := range curs {
		wrapped[i] = WrapCursor(c, in.cfg)
	}
	return wrapped, nil
}

// Temperature forwards to the wrapped source.
func (in *Injector) Temperature() (*timeseries.Temperature, error) {
	return in.src.Temperature()
}

var _ core.PartitionedSource = (*Injector)(nil)

// Cursor injects faults into an inner cursor's stream. It implements
// core.ContextCursor (delays and retries are cancellable), core.Skipper
// (the pipeline can abandon a consumer whose transient fault outlives
// the retry budget), and forwards core.SizeHinter.
type Cursor struct {
	cfg   Config
	inner core.Cursor
	ctx   context.Context

	served int // successful yields, for truncation accounting

	// A consumer mid-transient-fault: the series is drawn from the inner
	// cursor but withheld while failsLeft > 0, per the transient
	// contract (the cursor stays positioned on the consumer).
	pending   *timeseries.Series
	failsLeft int
}

// WrapCursor wraps one cursor with fault injection under cfg. The
// wrapper owns the inner cursor: closing it closes the inner cursor.
func WrapCursor(cur core.Cursor, cfg Config) *Cursor {
	return &Cursor{cfg: cfg, inner: cur}
}

// BindContext implements core.ContextCursor.
func (c *Cursor) BindContext(ctx context.Context) {
	c.ctx = ctx
	core.BindContext(c.inner, ctx)
}

func (c *Cursor) ctxErr() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// Next implements core.Cursor, delaying, failing, corrupting, or
// serving according to the consumer's drawn fault.
func (c *Cursor) Next() (*timeseries.Series, error) {
	if err := c.ctxErr(); err != nil {
		return nil, err
	}
	if c.cfg.Delay > 0 {
		if err := c.sleep(c.cfg.Delay); err != nil {
			return nil, err
		}
	}
	if c.pending != nil {
		if c.failsLeft > 0 {
			c.failsLeft--
			return nil, &core.ConsumerError{ID: c.pending.ID, Transient: true, Err: ErrTransient}
		}
		s := c.pending
		c.pending = nil
		return c.serve(s)
	}
	s, err := c.inner.Next()
	if err != nil {
		return nil, err
	}
	if c.truncated() {
		// The tail of the stream is gone: the inner cursor advanced, so
		// the error is permanent and scoped to this consumer.
		return nil, &core.ConsumerError{ID: s.ID, Err: ErrTruncated}
	}
	switch k := c.cfg.Decide(s.ID); k {
	case Permanent:
		return nil, &core.ConsumerError{ID: s.ID, Err: ErrPermanent}
	case Transient:
		c.pending = s
		c.failsLeft = c.cfg.tries() - 1
		return nil, &core.ConsumerError{ID: s.ID, Transient: true, Err: ErrTransient}
	case Corrupt, AllMissing:
		return c.serve(c.cfg.injure(k, s))
	default:
		return c.serve(s)
	}
}

func (c *Cursor) truncated() bool {
	return c.cfg.TruncateAfter > 0 && c.served >= c.cfg.TruncateAfter
}

func (c *Cursor) serve(s *timeseries.Series) (*timeseries.Series, error) {
	c.served++
	return s, nil
}

// sleep waits for d, honoring the bound context.
func (c *Cursor) sleep(d time.Duration) error {
	if c.ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

// Skip implements core.Skipper: it abandons the consumer a transient
// fault is holding, letting the pipeline quarantine it and move on.
func (c *Cursor) Skip() error {
	c.pending = nil
	c.failsLeft = 0
	return nil
}

// Reset implements core.Cursor. Fault decisions are per-ID, so a replay
// injures exactly the same consumers.
func (c *Cursor) Reset() error {
	c.pending = nil
	c.failsLeft = 0
	c.served = 0
	return c.inner.Reset()
}

// Close implements core.Cursor, closing the inner cursor.
func (c *Cursor) Close() error {
	c.pending = nil
	c.failsLeft = 0
	return c.inner.Close()
}

// SizeHint forwards the inner cursor's hint.
func (c *Cursor) SizeHint() (int, bool) {
	if h, ok := c.inner.(core.SizeHinter); ok {
		return h.SizeHint()
	}
	return 0, false
}
