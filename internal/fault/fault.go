// Package fault injects deterministic, seeded faults into an engine's
// cursor stream so the failure-containment machinery (core.FailPolicy,
// exec's retry/quarantine/repair paths, the chaos conformance suite)
// can be exercised and benchmarked without flaky fixtures.
//
// Every fault decision is a pure function of (Config.Seed, consumer ID):
// which consumers fail, and how, does not depend on cursor order,
// partitioning, worker count, or wall-clock time. A test can therefore
// compute the exact expected quarantine set up front (FailingIDs) and
// assert that a run reports precisely those consumers in
// Results.Failed, on any engine and any execution path.
//
// The injected fault taxonomy mirrors the failure model in DESIGN.md:
//
//   - Transient I/O errors: Next fails with a retryable
//     core.ConsumerError a fixed number of times, then serves the series
//     (the cursor stays positioned on the consumer, per the transient
//     contract). The wrapper implements core.Skipper so the pipeline
//     can abandon a consumer whose transient error outlives the retry
//     budget.
//   - Permanent per-consumer errors: Next consumes the series and fails
//     with a non-retryable core.ConsumerError.
//   - Corrupt readings: a deterministic contiguous window of the
//     consumer's readings is replaced with NaN on a private copy
//     (engine-owned buffers are never mutated).
//   - All-missing series: every reading NaN — the case Repair must
//     demote to quarantine (impute.ErrAllMissing).
//   - Read delays: a fixed per-Next sleep, cancellable through the
//     bound context.
//   - Mid-stream truncation: after TruncateAfter successful series, the
//     rest of the stream fails with permanent per-consumer errors, as
//     if the tail of the storage vanished.
package fault

import (
	"errors"
	"math"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

var nan = math.NaN()

// Sentinel errors carried inside the injected core.ConsumerErrors.
var (
	// ErrTransient is the cause of an injected transient I/O error.
	ErrTransient = errors.New("fault: injected transient I/O error")
	// ErrPermanent is the cause of an injected permanent storage error.
	ErrPermanent = errors.New("fault: injected permanent storage error")
	// ErrTruncated is the cause reported for every consumer past the
	// truncation point.
	ErrTruncated = errors.New("fault: stream truncated")
)

// Kind classifies the fault a consumer draws.
type Kind int

const (
	// None: the consumer is served untouched.
	None Kind = iota
	// Transient: Next fails TransientTries times, then serves the series.
	Transient
	// Permanent: Next consumes the series and fails permanently.
	Permanent
	// Corrupt: a window of readings is NaN on a copy of the series.
	Corrupt
	// AllMissing: every reading is NaN on a copy of the series.
	AllMissing
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Corrupt:
		return "corrupt"
	case AllMissing:
		return "all-missing"
	default:
		return "unknown"
	}
}

// Config selects fault rates and shapes. Rates are probabilities in
// [0, 1] and are mutually exclusive per consumer: each consumer draws
// one uniform value from splitmix64(Seed ^ id) and falls into the first
// matching band, in the order Permanent, Transient, AllMissing,
// Corrupt. The zero value injects nothing.
type Config struct {
	// Seed drives every fault decision. Two configs with equal rates and
	// seeds injure exactly the same consumers in exactly the same way.
	Seed uint64

	// Permanent is the rate of permanent per-consumer extraction errors.
	Permanent float64
	// Transient is the rate of transient (retryable) extraction errors.
	Transient float64
	// TransientTries is how many consecutive Next calls fail before a
	// transient consumer is served. Defaults to 2 — within the
	// pipeline's retry budget, so transient consumers recover. Set it to
	// at least the budget (exec.ExtractAttempts) to force the
	// exhausted-retries path instead.
	TransientTries int
	// AllMissing is the rate of series whose every reading becomes NaN.
	AllMissing float64
	// Corrupt is the rate of series that get a NaN window.
	Corrupt float64
	// CorruptFrac is the fraction of readings the NaN window covers,
	// clamped to at least one reading. Defaults to 0.10.
	CorruptFrac float64

	// Delay is slept before every Next (after the first), cancellable
	// through the bound context. Zero means no delay.
	Delay time.Duration
	// TruncateAfter, when positive, fails every consumer after that many
	// successful series per cursor with a permanent ErrTruncated error.
	// With partition cursors the count is per partition.
	TruncateAfter int
}

func (c Config) tries() int {
	if c.TransientTries <= 0 {
		return 2
	}
	return c.TransientTries
}

func (c Config) corruptFrac() float64 {
	if c.CorruptFrac <= 0 {
		return 0.10
	}
	if c.CorruptFrac > 1 {
		return 1
	}
	return c.CorruptFrac
}

// splitmix64 is the SplitMix64 mixer — a bijective avalanche over
// uint64, so per-ID decisions are independent and reproducible with no
// shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a uint64 onto [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Decision salts: distinct streams for the kind draw and the corrupt
// window placement, so changing one rate never reshuffles the other.
const (
	saltKind   = 0xfa017c5d00000001
	saltWindow = 0xfa017c5d00000002
)

// Decide returns the fault the consumer draws under this config. It is
// the single source of truth: the injecting cursor and the expectation
// helpers (Plan, FailingIDs) both call it.
func (c Config) Decide(id timeseries.ID) Kind {
	u := unit(splitmix64(c.Seed ^ uint64(id) ^ saltKind))
	p := c.Permanent
	if u < p {
		return Permanent
	}
	p += c.Transient
	if u < p {
		return Transient
	}
	p += c.AllMissing
	if u < p {
		return AllMissing
	}
	p += c.Corrupt
	if u < p {
		return Corrupt
	}
	return None
}

// Plan maps every consumer to its drawn fault, omitting None. Tests use
// it to compute expectations before a run.
func (c Config) Plan(ids []timeseries.ID) map[timeseries.ID]Kind {
	plan := make(map[timeseries.ID]Kind)
	for _, id := range ids {
		if k := c.Decide(id); k != None {
			plan[id] = k
		}
	}
	return plan
}

// FailingIDs returns, in input order, the consumers a run under the
// given policy is expected to quarantine (Results.Failed):
//
//   - Permanent faults fail under Quarantine and Repair.
//   - Transient faults fail only when TransientTries exhausts the
//     pipeline's retry budget (retryBudget, normally
//     exec.ExtractAttempts).
//   - AllMissing fails under both policies (Repair demotes it).
//   - Corrupt fails under Quarantine and is saved by Repair.
//
// Truncation (TruncateAfter) is order-dependent and therefore not
// modeled here; tests using it should assert on counts. Under FailFast
// nothing is quarantined — the first fault aborts the run.
func (c Config) FailingIDs(ids []timeseries.ID, policy core.FailPolicy, retryBudget int) []timeseries.ID {
	if policy == core.FailFast {
		return nil
	}
	var out []timeseries.ID
	for _, id := range ids {
		switch c.Decide(id) {
		case Permanent, AllMissing:
			out = append(out, id)
		case Transient:
			if c.tries() >= retryBudget {
				out = append(out, id)
			}
		case Corrupt:
			if policy == core.Quarantine {
				out = append(out, id)
			}
		}
	}
	return out
}

// corruptWindow returns the [lo, hi) reading window NaN'd for a corrupt
// consumer: a contiguous run whose length is CorruptFrac of the series
// (at least 1) and whose deterministic offset keeps at least one real
// reading on each side when the series is long enough — the shape the
// hybrid imputer handles best, so Repair runs can be asserted exactly.
func (c Config) corruptWindow(id timeseries.ID, n int) (lo, hi int) {
	if n == 0 {
		return 0, 0
	}
	m := int(c.corruptFrac() * float64(n))
	if m < 1 {
		m = 1
	}
	if m > n-2 {
		m = n - 2
	}
	if m < 1 {
		// Series too short to keep an edge on both sides; NaN it whole.
		return 0, n
	}
	span := n - 1 - m // offsets in [1, n-1-m]
	off := 1 + int(splitmix64(c.Seed^uint64(id)^saltWindow)%uint64(span))
	return off, off + m
}

// injure returns the series to serve for a consumer that drew Corrupt
// or AllMissing: a clone with NaN readings. The engine's series is
// never touched — colstore and warm-path cursors hand out views into
// engine-owned buffers.
func (c Config) injure(k Kind, s *timeseries.Series) *timeseries.Series {
	cp := s.Clone()
	switch k {
	case AllMissing:
		for i := range cp.Readings {
			cp.Readings[i] = nan
		}
	case Corrupt:
		lo, hi := c.corruptWindow(s.ID, len(cp.Readings))
		for i := lo; i < hi; i++ {
			cp.Readings[i] = nan
		}
	}
	return cp
}
