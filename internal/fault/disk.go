package fault

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"sync"

	"github.com/smartmeter/smartbench/internal/wal"
)

// ErrCrashed is returned by every disk operation at and after the
// injected crash point. It models the process dying mid-syscall: the
// operation may be partially applied (a short write), and nothing else
// happens until Reboot.
var ErrCrashed = errors.New("fault: injected disk crash")

// DiskConfig selects where and how a Disk fails. The zero value never
// fails — the probe run uses it to count operations.
type DiskConfig struct {
	// Seed drives every deterministic choice: short-write lengths,
	// torn-tail cut points and corruption flips at Reboot.
	Seed uint64
	// CrashAtOp, when positive, makes the Nth counted operation (Write,
	// Sync, Truncate, Create, Rename, Remove, SyncDir — 1-based) fail
	// with ErrCrashed, along with every operation after it. A crashing
	// Write applies a deterministic prefix of its data first (a short
	// write); a crashing Sync persists nothing.
	CrashAtOp int64
	// FailSyncRate injects non-fatal fsync failures: each Sync draws
	// from splitmix64(Seed, op) and fails at this rate without
	// persisting and without crashing the disk. Models EIO from the
	// kernel that the WAL must surface to un-acked committers.
	FailSyncRate float64
}

// Disk is a deterministic in-memory filesystem implementing wal.FS,
// with a two-layer durability model: every file is a byte array plus a
// durable prefix length. Writes extend the volatile array; Sync
// advances the durable mark; Reboot resolves each file to its durable
// prefix plus a deterministically torn (and possibly bit-flipped)
// fragment of the unsynced suffix — exactly the disk states a real
// crash can leave behind. Tests sweep CrashAtOp across every operation
// of a recorded run to visit every crash window.
type Disk struct {
	mu      sync.Mutex
	cfg     DiskConfig
	files   map[string]*diskFile
	ops     int64
	crashed bool
	torn    int
}

type diskFile struct {
	data       []byte
	durableLen int
}

// NewDisk returns an empty deterministic disk.
func NewDisk(cfg DiskConfig) *Disk {
	return &Disk{cfg: cfg, files: make(map[string]*diskFile)}
}

// Decision salts for the disk's deterministic draws, continuing the
// stream-fault salt block above.
const (
	saltShortWrite = 0xfa017c5d00000003
	saltTearPoint  = 0xfa017c5d00000004
	saltBitFlip    = 0xfa017c5d00000005
	saltSyncFail   = 0xfa017c5d00000006
)

// step counts one operation and reports whether it crashes. just is
// true only for the operation that hits CrashAtOp — it may partially
// apply before failing.
func (d *Disk) step() (just bool, err error) {
	if d.crashed {
		return false, ErrCrashed
	}
	d.ops++
	if d.cfg.CrashAtOp > 0 && d.ops >= d.cfg.CrashAtOp {
		d.crashed = true
		return true, ErrCrashed
	}
	return false, nil
}

// Ops returns how many operations have been counted. A probe run with
// a zero config measures the sweep range for CrashAtOp.
func (d *Disk) Ops() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Crashed reports whether the crash point has been hit.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// TornFiles counts files whose unsynced suffix was partially kept or
// corrupted by Reboot — the torn-tail cases CRC recovery must detect.
func (d *Disk) TornFiles() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.torn
}

// Reboot resolves the crash: each file becomes its durable prefix plus
// a deterministic cut of whatever was written but never synced, with
// the last torn byte bit-flipped on half the draws. After Reboot the
// disk serves operations again, as the reopened process would see it.
func (d *Disk) Reboot() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for path, f := range d.files {
		suffix := len(f.data) - f.durableLen
		if suffix > 0 {
			h := d.cfg.Seed ^ uint64(d.cfg.CrashAtOp) ^ pathHash(path)
			k := int(splitmix64(h^saltTearPoint) % uint64(suffix+1))
			keep := f.durableLen + k
			f.data = f.data[:keep]
			if k > 0 && k < suffix {
				d.torn++
				if splitmix64(h^saltBitFlip)&1 == 0 {
					f.data[keep-1] ^= 0x40
				}
			}
		}
		f.durableLen = len(f.data)
	}
	d.crashed = false
	d.cfg.CrashAtOp = 0
}

func pathHash(path string) uint64 {
	h := uint64(0x9ae16a3b2f90404f)
	for i := 0; i < len(path); i++ {
		h = splitmix64(h ^ uint64(path[i]))
	}
	return h
}

// file returns the entry for path, creating it when create is set.
func (d *Disk) file(path string, create bool) (*diskFile, error) {
	f, ok := d.files[path]
	if !ok {
		if !create {
			return nil, fmt.Errorf("fault: disk: %q: %w", path, iofs.ErrNotExist)
		}
		f = &diskFile{}
		d.files[path] = f
	}
	return f, nil
}

// MkdirAll is a no-op: directories are implicit.
func (d *Disk) MkdirAll(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	return nil
}

// OpenAppend opens (creating if needed) a file for appends.
func (d *Disk) OpenAppend(path string) (wal.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	f, err := d.file(path, true)
	if err != nil {
		return nil, err
	}
	return &diskHandle{d: d, f: f}, nil
}

// Create truncates or creates path. The truncation is volatile like any
// write: the old durable content is gone only because the WAL always
// creates under a temp name and renames.
func (d *Disk) Create(path string) (wal.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.step(); err != nil {
		return nil, err
	}
	f := &diskFile{}
	d.files[path] = f
	return &diskHandle{d: d, f: f}, nil
}

// Rename atomically moves oldPath over newPath. A crash at this
// operation leaves the rename entirely unapplied — the atomicity the
// checkpoint protocol depends on.
func (d *Disk) Rename(oldPath, newPath string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.step(); err != nil {
		return err
	}
	f, err := d.file(oldPath, false)
	if err != nil {
		return err
	}
	delete(d.files, oldPath)
	d.files[newPath] = f
	return nil
}

// Remove deletes path.
func (d *Disk) Remove(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.step(); err != nil {
		return err
	}
	if _, err := d.file(path, false); err != nil {
		return err
	}
	delete(d.files, path)
	return nil
}

// SyncDir counts as an operation but has no modeled effect: renames
// here are already atomic-durable, so the directory fsync only matters
// as a crash point.
func (d *Disk) SyncDir(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.step()
	return err
}

// diskHandle is one open file. All methods take the disk lock, so
// concurrent shard writers interleave like they would on a kernel.
type diskHandle struct {
	d *Disk
	f *diskFile
}

func (h *diskHandle) Write(p []byte) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	just, err := h.d.step()
	if err != nil {
		if just && len(p) > 0 {
			// Short write: a deterministic prefix lands before the crash.
			n := int(splitmix64(h.d.cfg.Seed^uint64(h.d.ops)^saltShortWrite) % uint64(len(p)+1))
			h.f.data = append(h.f.data, p[:n]...)
		}
		return 0, err
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *diskHandle) ReadAt(p []byte, off int64) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return 0, ErrCrashed
	}
	if off < 0 || off > int64(len(h.f.data)) {
		return 0, fmt.Errorf("fault: disk: read at %d beyond size %d", off, len(h.f.data))
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("fault: disk: short read")
	}
	return n, nil
}

func (h *diskHandle) Sync() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if _, err := h.d.step(); err != nil {
		return err
	}
	if h.d.cfg.FailSyncRate > 0 &&
		unit(splitmix64(h.d.cfg.Seed^uint64(h.d.ops)^saltSyncFail)) < h.d.cfg.FailSyncRate {
		return fmt.Errorf("fault: disk: injected fsync failure at op %d", h.d.ops)
	}
	h.f.durableLen = len(h.f.data)
	return nil
}

func (h *diskHandle) Truncate(size int64) error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if _, err := h.d.step(); err != nil {
		return err
	}
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("fault: disk: truncate to %d beyond size %d", size, len(h.f.data))
	}
	h.f.data = h.f.data[:size]
	if h.f.durableLen > int(size) {
		h.f.durableLen = int(size)
	}
	return nil
}

func (h *diskHandle) Size() (int64, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return 0, ErrCrashed
	}
	return int64(len(h.f.data)), nil
}

func (h *diskHandle) Close() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return ErrCrashed
	}
	return nil
}
