package fault_test

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/fault"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func makeDataset(t *testing.T, consumers, days int) *timeseries.Dataset {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func datasetIDs(ds *timeseries.Dataset) []timeseries.ID {
	ids := make([]timeseries.ID, len(ds.Series))
	for i, s := range ds.Series {
		ids[i] = s.ID
	}
	return ids
}

// mixedConfig injects every fault kind at the seeded rates the
// acceptance tests pin (~5% per kind over the dataset).
func mixedConfig() fault.Config {
	return fault.Config{
		Seed:      42,
		Permanent: 0.05, Transient: 0.10,
		AllMissing: 0.05, Corrupt: 0.08,
	}
}

func TestDecideIsDeterministicAndOrderFree(t *testing.T) {
	cfg := mixedConfig()
	ds := makeDataset(t, 200, 7)
	ids := datasetIDs(ds)
	plan := cfg.Plan(ids)
	if len(plan) == 0 {
		t.Fatal("no faults drawn at ~28% combined rate over 200 consumers")
	}
	counts := map[fault.Kind]int{}
	for _, k := range plan {
		counts[k]++
	}
	for _, k := range []fault.Kind{fault.Permanent, fault.Transient, fault.AllMissing, fault.Corrupt} {
		if counts[k] == 0 {
			t.Errorf("kind %v never drawn over 200 consumers", k)
		}
	}
	// Same config, reversed ID order: identical decisions.
	for _, id := range ids {
		if cfg.Decide(id) != cfg.Decide(id) {
			t.Fatalf("Decide(%d) not stable", id)
		}
	}
	other := cfg
	other.Seed++
	differs := false
	for _, id := range ids {
		if cfg.Decide(id) != other.Decide(id) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("changing the seed changed no decision")
	}
}

func TestCorruptWindowKeepsEdges(t *testing.T) {
	cfg := fault.Config{Seed: 9, Corrupt: 1}
	ds := makeDataset(t, 10, 7)
	cur := fault.WrapCursor(core.NewDatasetCursor(ds), cfg)
	defer cur.Close()
	n := 0
	for {
		s, err := cur.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if math.IsNaN(s.Readings[0]) || math.IsNaN(s.Readings[len(s.Readings)-1]) {
			t.Errorf("consumer %d: corrupt window reached the series edge", s.ID)
		}
		miss := 0
		for _, v := range s.Readings {
			if math.IsNaN(v) {
				miss++
			}
		}
		if miss == 0 {
			t.Errorf("consumer %d: no NaN injected at rate 1", s.ID)
		}
		// The engine-owned series must be untouched.
		for _, v := range ds.Series[n-1].Readings {
			if math.IsNaN(v) {
				t.Fatalf("consumer %d: engine-owned buffer mutated", s.ID)
			}
		}
	}
	if n != 10 {
		t.Fatalf("served %d of 10", n)
	}
}

func TestQuarantineReportsExactlyInjectedIDs(t *testing.T) {
	ds := makeDataset(t, 60, 14)
	ids := datasetIDs(ds)
	cfg := mixedConfig()
	want := cfg.FailingIDs(ids, core.Quarantine, exec.ExtractAttempts)
	if len(want) == 0 {
		t.Fatal("expected a non-empty quarantine set; pick a different seed")
	}

	for _, task := range []core.Task{core.TaskHistogram, core.TaskThreeLine, core.TaskPAR, core.TaskSimilarity} {
		for _, workers := range []int{1, 4} {
			src := fault.New(exec.NewDatasetSource(ds), cfg)
			spec := core.Spec{Task: task, K: 3, Workers: workers, FailPolicy: core.Quarantine}
			got, err := exec.Run(src, spec)
			if err != nil {
				t.Fatalf("%v w%d: %v", task, workers, err)
			}
			gotIDs := got.FailedIDs()
			if len(gotIDs) != len(want) {
				t.Fatalf("%v w%d: %d failed consumers, want %d\n got %v\nwant %v",
					task, workers, len(gotIDs), len(want), gotIDs, want)
			}
			for i := range want {
				if gotIDs[i] != want[i] {
					t.Fatalf("%v w%d: failed[%d] = %d, want %d", task, workers, i, gotIDs[i], want[i])
				}
			}
			if got.Count()+len(gotIDs) != len(ids) {
				t.Fatalf("%v w%d: %d results + %d failed != %d consumers",
					task, workers, got.Count(), len(gotIDs), len(ids))
			}
		}
	}
}

// TestSurvivorsBitIdentical pins the containment guarantee: consumers
// untouched by injection produce exactly the results of a clean run
// over the dataset with the quarantined consumers removed.
func TestSurvivorsBitIdentical(t *testing.T) {
	ds := makeDataset(t, 40, 14)
	ids := datasetIDs(ds)
	cfg := mixedConfig()
	failing := cfg.FailingIDs(ids, core.Quarantine, exec.ExtractAttempts)
	failSet := map[timeseries.ID]bool{}
	for _, id := range failing {
		failSet[id] = true
	}
	kept := &timeseries.Dataset{Temperature: ds.Temperature}
	for _, s := range ds.Series {
		if !failSet[s.ID] {
			kept.Series = append(kept.Series, s)
		}
	}

	spec := core.Spec{Task: core.TaskThreeLine, Workers: 2, FailPolicy: core.Quarantine}
	got, err := exec.Run(fault.New(exec.NewDatasetSource(ds), cfg), spec)
	if err != nil {
		t.Fatal(err)
	}
	clean := spec
	clean.FailPolicy = core.FailFast
	want, err := exec.Run(exec.NewDatasetSource(kept), clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ThreeLines) != len(want.ThreeLines) {
		t.Fatalf("%d results, want %d", len(got.ThreeLines), len(want.ThreeLines))
	}
	for i := range want.ThreeLines {
		g, w := got.ThreeLines[i], want.ThreeLines[i]
		if g.ID != w.ID {
			t.Fatalf("result %d: ID %d vs %d", i, g.ID, w.ID)
		}
		if g.BaseLoad != w.BaseLoad || g.HeatingGradient != w.HeatingGradient ||
			g.CoolingGradient != w.CoolingGradient {
			t.Fatalf("consumer %d: model drifted under injection", g.ID)
		}
	}
}

func TestRepairSavesCorruptDemotesAllMissing(t *testing.T) {
	ds := makeDataset(t, 60, 14)
	ids := datasetIDs(ds)
	cfg := mixedConfig()
	want := cfg.FailingIDs(ids, core.Repair, exec.ExtractAttempts)
	plan := cfg.Plan(ids)

	src := fault.New(exec.NewDatasetSource(ds), cfg)
	got, err := exec.Run(src, core.Spec{Task: core.TaskHistogram, FailPolicy: core.Repair})
	if err != nil {
		t.Fatal(err)
	}
	gotIDs := got.FailedIDs()
	if len(gotIDs) != len(want) {
		t.Fatalf("%d failed, want %d\n got %v\nwant %v", len(gotIDs), len(want), gotIDs, want)
	}
	for i := range want {
		if gotIDs[i] != want[i] {
			t.Fatalf("failed[%d] = %d, want %d", i, gotIDs[i], want[i])
		}
	}
	// Corrupt consumers were repaired, not quarantined: they have
	// results.
	resultIDs := map[timeseries.ID]bool{}
	for _, r := range got.Histograms {
		resultIDs[r.ID] = true
	}
	for id, k := range plan {
		if k == fault.Corrupt && !resultIDs[id] {
			t.Errorf("corrupt consumer %d not repaired under Repair", id)
		}
	}
	// All-missing consumers were demoted with the repair phase attached.
	for _, f := range got.Failed {
		if plan[f.ID] == fault.AllMissing && f.Phase != core.PhaseRepair {
			t.Errorf("all-missing consumer %d failed in phase %q, want %q", f.ID, f.Phase, core.PhaseRepair)
		}
	}
}

func TestFailFastAbortsOnFirstFault(t *testing.T) {
	ds := makeDataset(t, 10, 7)
	cfg := fault.Config{Seed: 1, Permanent: 1}
	_, err := exec.Run(fault.New(exec.NewDatasetSource(ds), cfg), core.Spec{Task: core.TaskHistogram})
	if !errors.Is(err, fault.ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent", err)
	}
}

func TestTransientWithinBudgetRecovers(t *testing.T) {
	ds := makeDataset(t, 20, 7)
	cfg := fault.Config{Seed: 3, Transient: 1, TransientTries: exec.ExtractAttempts - 1}
	got, err := exec.Run(fault.New(exec.NewDatasetSource(ds), cfg),
		core.Spec{Task: core.TaskHistogram, FailPolicy: core.Quarantine})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Failed) != 0 {
		t.Fatalf("%d consumers failed; transient faults within budget must recover", len(got.Failed))
	}
	if got.Count() != 20 {
		t.Fatalf("count = %d, want 20", got.Count())
	}
}

func TestTransientExhaustedIsSkippedAndQuarantined(t *testing.T) {
	ds := makeDataset(t, 20, 7)
	cfg := fault.Config{Seed: 3, Transient: 0.3, TransientTries: exec.ExtractAttempts}
	want := cfg.FailingIDs(datasetIDs(ds), core.Quarantine, exec.ExtractAttempts)
	if len(want) == 0 {
		t.Fatal("expected some transient consumers; pick a different seed")
	}
	got, err := exec.Run(fault.New(exec.NewDatasetSource(ds), cfg),
		core.Spec{Task: core.TaskHistogram, FailPolicy: core.Quarantine})
	if err != nil {
		t.Fatal(err)
	}
	gotIDs := got.FailedIDs()
	if len(gotIDs) != len(want) {
		t.Fatalf("%d failed, want %d", len(gotIDs), len(want))
	}
	for _, f := range got.Failed {
		if !errors.Is(f.Err, fault.ErrTransient) {
			t.Errorf("consumer %d: cause %v, want ErrTransient", f.ID, f.Err)
		}
		if f.Phase != core.PhaseExtract {
			t.Errorf("consumer %d: phase %q, want %q", f.ID, f.Phase, core.PhaseExtract)
		}
	}
}

func TestTruncationQuarantinesTail(t *testing.T) {
	ds := makeDataset(t, 20, 7)
	cfg := fault.Config{Seed: 5, TruncateAfter: 5}
	got, err := exec.Run(fault.New(exec.NewDatasetSource(ds), cfg),
		core.Spec{Task: core.TaskHistogram, FailPolicy: core.Quarantine})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 5 {
		t.Fatalf("count = %d, want 5 (TruncateAfter)", got.Count())
	}
	if len(got.Failed) != 15 {
		t.Fatalf("%d failed, want 15", len(got.Failed))
	}
	for _, f := range got.Failed {
		if !errors.Is(f.Err, fault.ErrTruncated) {
			t.Errorf("consumer %d: cause %v, want ErrTruncated", f.ID, f.Err)
		}
	}
}

func TestDelayedCursorIsCancellable(t *testing.T) {
	ds := makeDataset(t, 50, 7)
	cfg := fault.Config{Seed: 6, Delay: 5 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := exec.RunContext(ctx, fault.New(exec.NewDatasetSource(ds), cfg),
			core.Spec{Task: core.TaskHistogram, FailPolicy: core.Quarantine})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if since := time.Since(start); since > time.Second {
			t.Fatalf("cancellation took %v", since)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("run did not return after cancellation")
	}
}

func TestResetReplaysIdenticalFaults(t *testing.T) {
	ds := makeDataset(t, 30, 7)
	cfg := mixedConfig()
	cur := fault.WrapCursor(core.NewDatasetCursor(ds), cfg)
	defer cur.Close()
	pass := func() (served []timeseries.ID, failed []timeseries.ID) {
		for {
			s, err := cur.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				ce, ok := core.AsConsumerError(err)
				if !ok {
					t.Fatal(err)
				}
				if ce.Transient {
					if err := cur.Skip(); err != nil {
						t.Fatal(err)
					}
				}
				failed = append(failed, ce.ID)
				continue
			}
			served = append(served, s.ID)
		}
	}
	s1, f1 := pass()
	if err := cur.Reset(); err != nil {
		t.Fatal(err)
	}
	s2, f2 := pass()
	if len(s1) != len(s2) || len(f1) != len(f2) {
		t.Fatalf("replay drifted: %d/%d served, %d/%d failed", len(s1), len(s2), len(f1), len(f2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("served[%d]: %d vs %d", i, s1[i], s2[i])
		}
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("failed[%d]: %d vs %d", i, f1[i], f2[i])
		}
	}
}
