package fault

import (
	"bytes"
	"errors"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// TestDiskDurability pins the two-layer model: synced bytes survive
// Reboot verbatim, unsynced bytes resolve to a torn prefix.
func TestDiskDurability(t *testing.T) {
	d := NewDisk(DiskConfig{Seed: 7})
	f, err := d.OpenAppend("a.log")
	if err != nil {
		t.Fatal(err)
	}
	synced := []byte("synced-bytes")
	if _, err := f.Write(synced); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile-tail")); err != nil {
		t.Fatal(err)
	}
	d.Reboot()
	g, err := d.OpenAppend("a.log")
	if err != nil {
		t.Fatal(err)
	}
	size, err := g.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size < int64(len(synced)) {
		t.Fatalf("size %d after reboot: synced prefix was lost", size)
	}
	got := make([]byte, len(synced))
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, synced) {
		t.Fatalf("synced prefix changed across reboot: %q", got)
	}
}

// TestDiskCrashAtOp checks the op counter: the Nth operation and
// everything after it fail with ErrCrashed, and nothing before does.
func TestDiskCrashAtOp(t *testing.T) {
	d := NewDisk(DiskConfig{Seed: 1, CrashAtOp: 3})
	f, err := d.OpenAppend("a.log") // not counted
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("one")); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("two")); err == nil { // op 3: crash
		t.Fatal("op 3 did not crash")
	} else if !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 3 failed with %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op got %v, want ErrCrashed", err)
	}
	if !d.Crashed() {
		t.Fatal("Crashed() = false after crash")
	}
	d.Reboot()
	if d.Crashed() {
		t.Fatal("Crashed() = true after reboot")
	}
	if _, err := d.OpenAppend("a.log"); err != nil {
		t.Fatalf("reopen after reboot: %v", err)
	}
}

// TestDiskRenameAtomic walks the temp-file-then-rename protocol
// (write old · create tmp · write tmp · sync tmp · rename · syncdir,
// ops 1..8): a crash at or before the rename leaves the old content;
// a crash after it serves the new content — never a mix.
func TestDiskRenameAtomic(t *testing.T) {
	writeReplace := func(d *Disk) {
		f, err := d.Create("seg") // op 1
		if err != nil {
			return
		}
		if _, err := f.Write([]byte("old")); err != nil { // op 2
			return
		}
		if err := f.Sync(); err != nil { // op 3
			return
		}
		g, err := d.Create("seg.tmp") // op 4
		if err != nil {
			return
		}
		if _, err := g.Write([]byte("new")); err != nil { // op 5
			return
		}
		if err := g.Sync(); err != nil { // op 6
			return
		}
		if err := d.Rename("seg.tmp", "seg"); err != nil { // op 7
			return
		}
		_ = d.SyncDir(".") // op 8
	}
	for crashAt := int64(4); crashAt <= 8; crashAt++ {
		d := NewDisk(DiskConfig{Seed: 2, CrashAtOp: crashAt})
		writeReplace(d)
		d.Reboot()
		h, err := d.OpenAppend("seg")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 3)
		if _, err := h.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		want := "old"
		if crashAt > 7 {
			want = "new"
		}
		if string(buf) != want {
			t.Fatalf("crashAt=%d: segment content %q, want %q", crashAt, buf, want)
		}
	}
}

// TestDiskWALSweep drives the real WAL over the fault disk at every
// crash point of a fixed append script: after reboot, Open must
// recover every committed batch and never decode a torn record.
func TestDiskWALSweep(t *testing.T) {
	script := make([][]core.Reading, 8)
	for i := range script {
		script[i] = []core.Reading{{
			ID:          timeseries.ID(1 + i%2),
			Hour:        i / 2,
			Consumption: float64(i) * 1.5,
			Temperature: float64(i) * 0.5,
		}}
	}
	run := func(d *Disk) (acked int) {
		l, err := wal.Open(wal.Options{Dir: "wal", Shards: 2, Policy: wal.SyncBatch, FS: d})
		if err != nil {
			return 0
		}
		for _, b := range script {
			shard := core.ShardFor(b[0].ID, 2)
			seq, err := l.Append(shard, b)
			if err != nil {
				return acked
			}
			if err := l.Commit(shard, seq); err != nil {
				return acked
			}
			acked++
		}
		_ = l.Close()
		return acked
	}

	probe := NewDisk(DiskConfig{Seed: 3})
	if got := run(probe); got != len(script) {
		t.Fatalf("probe run acked %d of %d batches", got, len(script))
	}
	maxOp := probe.Ops()
	if maxOp < 16 {
		t.Fatalf("probe counted only %d ops; sweep too small", maxOp)
	}

	torn := 0
	for op := int64(1); op <= maxOp; op++ {
		d := NewDisk(DiskConfig{Seed: 3, CrashAtOp: op})
		acked := run(d)
		d.Reboot()
		torn += d.TornFiles()
		r, err := wal.Open(wal.Options{Dir: "wal", Shards: 2, FS: d})
		if err != nil {
			t.Fatalf("op %d: reopen: %v", op, err)
		}
		recovered := 0
		if err := r.Replay(func(shard int, batch []core.Reading) error {
			recovered++
			return nil
		}); err != nil {
			t.Fatalf("op %d: replay: %v", op, err)
		}
		if recovered < acked {
			t.Errorf("op %d: recovered %d batches < %d acked", op, recovered, acked)
		}
		if recovered > len(script) {
			t.Errorf("op %d: recovered %d batches, more than ever written", op, recovered)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("op %d: close: %v", op, err)
		}
	}
	if torn == 0 {
		t.Error("no crash point produced a torn file; the tear model is dead")
	}
	t.Logf("swept %d crash points, %d torn files", maxOp, torn)
}

// TestDiskFailSync: injected fsync failures surface through Commit
// without crashing the disk.
func TestDiskFailSync(t *testing.T) {
	d := NewDisk(DiskConfig{Seed: 4, FailSyncRate: 1})
	l, err := wal.Open(wal.Options{Dir: "wal", Shards: 1, Policy: wal.SyncBatch, FS: d})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(0, []core.Reading{{ID: 1, Hour: 0, Consumption: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(0, seq); err == nil {
		t.Fatal("Commit succeeded under FailSyncRate=1")
	}
	if d.Crashed() {
		t.Fatal("fsync failure must not crash the disk")
	}
}
