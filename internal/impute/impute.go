// Package impute fills gaps in smart meter series. The paper (§2.1)
// points to missing-data handling as a prerequisite of real deployments
// (meters drop readings during outages and network failures); this
// package provides the standard remedies so benchmark inputs can be
// cleaned before analytics:
//
//   - linear interpolation between the gap's neighbours, the right tool
//     for short gaps;
//   - the historical mean of the same hour of day, better for long gaps
//     where interpolation would draw a meaningless straight line;
//   - a hybrid that switches on gap length, the strategy meter data
//     management systems typically apply.
//
// Missing readings are represented as NaN.
package impute

import (
	"errors"
	"fmt"
	"math"

	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Missing is the in-band marker for an absent reading.
var Missing = math.NaN()

// IsMissing reports whether a reading is absent.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Gap is one maximal run of missing readings.
type Gap struct {
	// Start is the first missing index; End is one past the last.
	Start, End int
}

// Len returns the gap length in hours.
func (g Gap) Len() int { return g.End - g.Start }

// FindGaps returns the maximal runs of missing values in order.
func FindGaps(readings []float64) []Gap {
	var gaps []Gap
	i := 0
	for i < len(readings) {
		if !IsMissing(readings[i]) {
			i++
			continue
		}
		j := i
		for j < len(readings) && IsMissing(readings[j]) {
			j++
		}
		gaps = append(gaps, Gap{Start: i, End: j})
		i = j
	}
	return gaps
}

// ErrAllMissing is returned when a series has no observed values at all.
var ErrAllMissing = errors.New("impute: every reading is missing")

// Linear fills every gap by linear interpolation between its observed
// neighbours. Leading and trailing gaps are filled with the nearest
// observed value. The input is modified in place and returned.
func Linear(readings []float64) ([]float64, error) {
	if len(readings) == 0 {
		return nil, ErrAllMissing
	}
	gaps := FindGaps(readings)
	if len(gaps) == 1 && gaps[0].Len() == len(readings) {
		return nil, ErrAllMissing
	}
	for _, g := range gaps {
		left := g.Start - 1
		right := g.End
		switch {
		case left < 0 && right >= len(readings):
			return nil, ErrAllMissing // unreachable after the check above
		case left < 0:
			for i := g.Start; i < g.End; i++ {
				readings[i] = readings[right]
			}
		case right >= len(readings):
			for i := g.Start; i < g.End; i++ {
				readings[i] = readings[left]
			}
		default:
			lv, rv := readings[left], readings[right]
			span := float64(right - left)
			for i := g.Start; i < g.End; i++ {
				frac := float64(i-left) / span
				readings[i] = lv + (rv-lv)*frac
			}
		}
	}
	return readings, nil
}

// HistoricalMean fills every missing reading with the mean of the
// observed readings at the same hour of day. Hours of day with no
// observation at all fall back to the overall observed mean. The input
// is modified in place and returned.
func HistoricalMean(readings []float64) ([]float64, error) {
	var perHour [timeseries.HoursPerDay]stats.Moments
	var overall stats.Moments
	for i, v := range readings {
		if IsMissing(v) {
			continue
		}
		perHour[i%timeseries.HoursPerDay].Add(v)
		overall.Add(v)
	}
	// Covers the empty slice too: no readings means no observations.
	if overall.N() == 0 {
		return nil, ErrAllMissing
	}
	for i, v := range readings {
		if !IsMissing(v) {
			continue
		}
		h := i % timeseries.HoursPerDay
		if perHour[h].N() > 0 {
			readings[i] = perHour[h].Mean()
		} else {
			readings[i] = overall.Mean()
		}
	}
	return readings, nil
}

// Hybrid fills short gaps (length <= maxLinearGap, default 3) by linear
// interpolation and longer gaps by the historical hour-of-day mean —
// the usual meter-data-management strategy. The input is modified in
// place and returned.
func Hybrid(readings []float64, maxLinearGap int) ([]float64, error) {
	if maxLinearGap <= 0 {
		maxLinearGap = 3
	}
	if len(readings) == 0 {
		return nil, ErrAllMissing
	}
	gaps := FindGaps(readings)
	if len(gaps) == 0 {
		return readings, nil
	}
	if len(gaps) == 1 && gaps[0].Len() == len(readings) {
		return nil, ErrAllMissing
	}
	// Historical means from observed values only.
	var perHour [timeseries.HoursPerDay]stats.Moments
	var overall stats.Moments
	for i, v := range readings {
		if !IsMissing(v) {
			perHour[i%timeseries.HoursPerDay].Add(v)
			overall.Add(v)
		}
	}
	for _, g := range gaps {
		if g.Len() <= maxLinearGap && g.Start > 0 && g.End < len(readings) {
			lv, rv := readings[g.Start-1], readings[g.End]
			span := float64(g.End - g.Start + 1)
			for i := g.Start; i < g.End; i++ {
				frac := float64(i-g.Start+1) / span
				readings[i] = lv + (rv-lv)*frac
			}
			continue
		}
		for i := g.Start; i < g.End; i++ {
			h := i % timeseries.HoursPerDay
			if perHour[h].N() > 0 {
				readings[i] = perHour[h].Mean()
			} else {
				readings[i] = overall.Mean()
			}
		}
	}
	return readings, nil
}

// CleanSeries imputes a series in place with the hybrid strategy and
// validates the result.
func CleanSeries(s *timeseries.Series, maxLinearGap int) error {
	if _, err := Hybrid(s.Readings, maxLinearGap); err != nil {
		return fmt.Errorf("impute: series %d: %w", s.ID, err)
	}
	return s.Validate()
}

// Fraction returns the share of missing readings in [0, 1].
func Fraction(readings []float64) float64 {
	if len(readings) == 0 {
		return 0
	}
	missing := 0
	for _, v := range readings {
		if IsMissing(v) {
			missing++
		}
	}
	return float64(missing) / float64(len(readings))
}
