package impute

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func TestFindGaps(t *testing.T) {
	r := []float64{1, Missing, Missing, 2, Missing, 3}
	gaps := FindGaps(r)
	if len(gaps) != 2 {
		t.Fatalf("gaps = %v", gaps)
	}
	if gaps[0] != (Gap{1, 3}) || gaps[1] != (Gap{4, 5}) {
		t.Errorf("gaps = %v", gaps)
	}
	if gaps[0].Len() != 2 {
		t.Errorf("len = %d", gaps[0].Len())
	}
	if got := FindGaps([]float64{1, 2, 3}); len(got) != 0 {
		t.Errorf("no-gap series: %v", got)
	}
}

func TestLinearInterior(t *testing.T) {
	r := []float64{1, Missing, Missing, 4}
	out, err := Linear(r)
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != 2 || out[2] != 3 {
		t.Errorf("interpolated = %v", out)
	}
}

func TestLinearEdges(t *testing.T) {
	r := []float64{Missing, Missing, 5, 6, Missing}
	out, err := Linear(r)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 || out[1] != 5 || out[4] != 6 {
		t.Errorf("edges = %v", out)
	}
}

func TestLinearAllMissing(t *testing.T) {
	if _, err := Linear([]float64{Missing, Missing}); err != ErrAllMissing {
		t.Errorf("err = %v", err)
	}
}

func TestHistoricalMean(t *testing.T) {
	// Two days; hour 1 of day 2 missing. Historical mean of hour 1 is
	// taken from day 1.
	r := make([]float64, 48)
	for i := range r {
		r[i] = float64(i % 24)
	}
	r[25] = Missing // day 2, hour 1 (value was 1)
	out, err := HistoricalMean(r)
	if err != nil {
		t.Fatal(err)
	}
	if out[25] != 1 {
		t.Errorf("imputed = %g, want 1", out[25])
	}
	if _, err := HistoricalMean([]float64{Missing}); err != ErrAllMissing {
		t.Errorf("all-missing err = %v", err)
	}
}

func TestHybridSwitchesOnGapLength(t *testing.T) {
	// 3 days of a sawtooth; a 2-hour gap (linear) and a 30-hour gap
	// (historical).
	days := 5
	r := make([]float64, days*24)
	for i := range r {
		r[i] = float64(i % 24)
	}
	// Short gap: hours 25-26.
	r[25], r[26] = Missing, Missing
	// Long gap: hours 48-77.
	for i := 48; i < 78; i++ {
		r[i] = Missing
	}
	out, err := Hybrid(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Short gap interpolates between r[24]=0 and r[27]=3 -> 1, 2.
	if math.Abs(out[25]-1) > 1e-9 || math.Abs(out[26]-2) > 1e-9 {
		t.Errorf("short gap = %g, %g", out[25], out[26])
	}
	// Long gap uses the hour-of-day mean, which equals the sawtooth value.
	for i := 48; i < 78; i++ {
		if math.Abs(out[i]-float64(i%24)) > 1e-9 {
			t.Errorf("long gap at %d = %g, want %d", i, out[i], i%24)
			break
		}
	}
}

func TestHybridNoGaps(t *testing.T) {
	r := []float64{1, 2, 3}
	out, err := Hybrid(r, 3)
	if err != nil || &out[0] != &r[0] {
		t.Errorf("no-gap hybrid changed the slice: %v, %v", out, err)
	}
	if _, err := Hybrid([]float64{Missing}, 3); err != ErrAllMissing {
		t.Errorf("all missing: %v", err)
	}
}

func TestCleanSeries(t *testing.T) {
	ds, err := seed.Generate(seed.Config{Consumers: 1, Days: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Series[0]
	rng := rand.New(rand.NewSource(4))
	// Knock out 5% of readings.
	for i := range s.Readings {
		if rng.Float64() < 0.05 {
			s.Readings[i] = Missing
		}
	}
	if Fraction(s.Readings) == 0 {
		t.Fatal("no holes punched")
	}
	if err := CleanSeries(s, 3); err != nil {
		t.Fatal(err)
	}
	if Fraction(s.Readings) != 0 {
		t.Error("holes remain after cleaning")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("cleaned series invalid: %v", err)
	}
}

func TestFraction(t *testing.T) {
	if Fraction(nil) != 0 {
		t.Error("empty fraction")
	}
	if f := Fraction([]float64{1, Missing, 3, Missing}); f != 0.5 {
		t.Errorf("fraction = %g", f)
	}
}

// Properties shared by all imputers: no missing values remain, observed
// values are untouched, and imputed values stay within the observed
// range (for linear and historical-mean strategies).
func TestImputersPropertiesQuick(t *testing.T) {
	strategies := map[string]func([]float64) ([]float64, error){
		"linear":     Linear,
		"historical": HistoricalMean,
		"hybrid":     func(r []float64) ([]float64, error) { return Hybrid(r, 3) },
	}
	for name, fn := range strategies {
		fn := fn
		t.Run(name, func(t *testing.T) {
			f := func(seedVal int64) bool {
				rng := rand.New(rand.NewSource(seedVal))
				n := (rng.Intn(6) + 2) * timeseries.HoursPerDay
				r := make([]float64, n)
				for i := range r {
					r[i] = rng.Float64() * 5
				}
				min, max := math.Inf(1), math.Inf(-1)
				for _, v := range r {
					min = math.Min(min, v)
					max = math.Max(max, v)
				}
				orig := append([]float64(nil), r...)
				// Punch random holes, but keep at least one observation.
				holes := rng.Intn(n-1) + 1
				for h := 0; h < holes; h++ {
					r[rng.Intn(n)] = Missing
				}
				out, err := fn(r)
				if err != nil {
					return false
				}
				for i, v := range out {
					if IsMissing(v) {
						return false
					}
					if !IsMissing(r[i]) && !math.IsNaN(orig[i]) && r[i] == orig[i] {
						continue // observed value untouched
					}
					if v < min-1e-9 || v > max+1e-9 {
						return false // imputed outside observed range
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
				t.Error(err)
			}
		})
	}
}

// An empty series used to be accepted silently by Linear and Hybrid
// (no gaps to fill), which let zero-length inputs sail through repair
// and fail later in odd places. All three strategies now report the
// typed ErrAllMissing so callers (e.g. the pipeline's Repair policy)
// can demote the consumer to quarantine.
func TestEmptySeriesIsAllMissing(t *testing.T) {
	if _, err := Linear(nil); !errors.Is(err, ErrAllMissing) {
		t.Errorf("Linear(nil) error = %v, want ErrAllMissing", err)
	}
	if _, err := HistoricalMean(nil); !errors.Is(err, ErrAllMissing) {
		t.Errorf("HistoricalMean(nil) error = %v, want ErrAllMissing", err)
	}
	if _, err := Hybrid(nil, 3); !errors.Is(err, ErrAllMissing) {
		t.Errorf("Hybrid(nil, 3) error = %v, want ErrAllMissing", err)
	}
}

func TestCleanSeriesAllMissingIsTyped(t *testing.T) {
	s := &timeseries.Series{ID: 9, Readings: []float64{Missing, Missing, Missing}}
	err := CleanSeries(s, 3)
	if !errors.Is(err, ErrAllMissing) {
		t.Fatalf("CleanSeries(all-NaN) error = %v, want wrapped ErrAllMissing", err)
	}
	s = &timeseries.Series{ID: 10}
	if err := CleanSeries(s, 3); !errors.Is(err, ErrAllMissing) {
		t.Fatalf("CleanSeries(empty) error = %v, want wrapped ErrAllMissing", err)
	}
}
