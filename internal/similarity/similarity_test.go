package similarity

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

func randomDataset(n, hours int, seedVal int64) *timeseries.Dataset {
	rng := rand.New(rand.NewSource(seedVal))
	series := make([]*timeseries.Series, n)
	for i := range series {
		r := make([]float64, hours)
		for j := range r {
			r[j] = rng.Float64() * 3
		}
		series[i] = &timeseries.Series{ID: timeseries.ID(i + 1), Readings: r}
	}
	return &timeseries.Dataset{Series: series,
		Temperature: &timeseries.Temperature{Values: make([]float64, hours)}}
}

func TestComputeBasic(t *testing.T) {
	d := randomDataset(20, 48, 1)
	rs, err := Compute(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 20 {
		t.Fatalf("results = %d", len(rs))
	}
	for i, r := range rs {
		if r.ID != d.Series[i].ID {
			t.Errorf("result %d ID = %d", i, r.ID)
		}
		if len(r.Matches) != 5 {
			t.Fatalf("consumer %d has %d matches, want 5", r.ID, len(r.Matches))
		}
		for j, m := range r.Matches {
			if m.ID == r.ID {
				t.Errorf("consumer %d matched itself", r.ID)
			}
			if j > 0 && m.Score > r.Matches[j-1].Score {
				t.Errorf("consumer %d matches not sorted: %v", r.ID, r.Matches)
			}
			if m.Score < -1-1e-9 || m.Score > 1+1e-9 {
				t.Errorf("score %g out of range", m.Score)
			}
		}
	}
}

func TestComputeFindsIdenticalSeries(t *testing.T) {
	d := randomDataset(10, 24, 2)
	// Make series 3 a scaled copy of series 7: cosine similarity 1.
	for j := range d.Series[2].Readings {
		d.Series[2].Readings[j] = 2 * d.Series[6].Readings[j]
	}
	rs, err := Compute(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rs[2].Matches[0].ID != d.Series[6].ID {
		t.Errorf("series 3 best match = %d, want %d", rs[2].Matches[0].ID, d.Series[6].ID)
	}
	if math.Abs(rs[2].Matches[0].Score-1) > 1e-12 {
		t.Errorf("score = %g, want 1", rs[2].Matches[0].Score)
	}
}

func TestComputeParallelMatchesSequential(t *testing.T) {
	d := randomDataset(37, 72, 3)
	seq, err := Compute(d, DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		par, err := ComputeParallel(d, DefaultK, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if len(seq[i].Matches) != len(par[i].Matches) {
				t.Fatalf("workers=%d consumer %d: %d vs %d matches",
					workers, seq[i].ID, len(seq[i].Matches), len(par[i].Matches))
			}
			for j := range seq[i].Matches {
				if seq[i].Matches[j] != par[i].Matches[j] {
					t.Fatalf("workers=%d consumer %d match %d: %+v vs %+v",
						workers, seq[i].ID, j, seq[i].Matches[j], par[i].Matches[j])
				}
			}
		}
	}
}

func TestComputeKLargerThanN(t *testing.T) {
	d := randomDataset(4, 24, 4)
	rs, err := Compute(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.Matches) != 3 { // n-1 candidates
			t.Errorf("consumer %d: %d matches, want 3", r.ID, len(r.Matches))
		}
	}
}

func TestComputeErrors(t *testing.T) {
	d := randomDataset(5, 24, 5)
	if _, err := Compute(d, 0); err == nil {
		t.Error("k=0: want error")
	}
	single := randomDataset(1, 24, 6)
	if _, err := Compute(single, 1); err != ErrTooFew {
		t.Errorf("single series err = %v, want ErrTooFew", err)
	}
	// Mismatched lengths.
	bad := randomDataset(3, 24, 7)
	bad.Series[1].Readings = bad.Series[1].Readings[:12]
	if _, err := Compute(bad, 1); err == nil {
		t.Error("mismatched lengths: want error")
	}
}

func TestEmptySeriesError(t *testing.T) {
	// Zero-LENGTH series are a validation error (ErrEmptySeries), distinct
	// from zero-NORM series which score 0 against everything (see
	// TestZeroSeriesSimilarToNothing). Both public entry points must
	// return the sentinel, not silently emit empty match lists.
	d := randomDataset(3, 0, 10)
	if _, err := Compute(d, 1); !errors.Is(err, ErrEmptySeries) {
		t.Errorf("Compute err = %v, want ErrEmptySeries", err)
	}
	if _, err := ComputeNaive(d, 1); !errors.Is(err, ErrEmptySeries) {
		t.Errorf("ComputeNaive err = %v, want ErrEmptySeries", err)
	}
	if _, err := ComputeParallel(d, 1, 4); !errors.Is(err, ErrEmptySeries) {
		t.Errorf("ComputeParallel err = %v, want ErrEmptySeries", err)
	}
}

func TestZeroSeriesSimilarToNothing(t *testing.T) {
	d := randomDataset(5, 24, 8)
	for j := range d.Series[0].Readings {
		d.Series[0].Readings[j] = 0
	}
	rs, err := Compute(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rs[0].Matches {
		if m.Score != 0 {
			t.Errorf("zero series got score %g", m.Score)
		}
	}
}

func TestSymmetryOfScores(t *testing.T) {
	d := randomDataset(8, 24, 9)
	rs, err := Compute(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	// score(a -> b) must equal score(b -> a) when both appear.
	score := make(map[[2]timeseries.ID]float64)
	for _, r := range rs {
		for _, m := range r.Matches {
			score[[2]timeseries.ID{r.ID, m.ID}] = m.Score
		}
	}
	for k, v := range score {
		if back, ok := score[[2]timeseries.ID{k[1], k[0]}]; ok {
			if math.Abs(v-back) > 1e-12 {
				t.Errorf("asymmetric: %v=%g vs %g", k, v, back)
			}
		}
	}
}

func TestPairScore(t *testing.T) {
	a := &timeseries.Series{ID: 1, Readings: []float64{1, 0}}
	b := &timeseries.Series{ID: 2, Readings: []float64{0, 1}}
	got, err := PairScore(a, b)
	if err != nil || got != 0 {
		t.Errorf("PairScore = %g, %v", got, err)
	}
}

func TestComputeDTW(t *testing.T) {
	d := randomDataset(10, 48, 15)
	// Series 2 is an exact copy of series 7: DTW distance 0, so it must
	// be the top match in both directions.
	copy(d.Series[2].Readings, d.Series[7].Readings)
	rs, err := ComputeDTW(d, 3, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 10 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[2].Matches[0].ID != d.Series[7].ID || rs[2].Matches[0].Score != 0 {
		t.Errorf("series 3 best DTW match = %+v", rs[2].Matches[0])
	}
	if rs[7].Matches[0].ID != d.Series[2].ID {
		t.Errorf("series 8 best DTW match = %+v", rs[7].Matches[0])
	}
	// Matches sorted by ascending distance (descending negated score).
	for _, r := range rs {
		for j := 1; j < len(r.Matches); j++ {
			if r.Matches[j].Score > r.Matches[j-1].Score {
				t.Fatalf("consumer %d matches out of order", r.ID)
			}
		}
	}
	// Validation.
	if _, err := ComputeDTW(d, 0, 0, 1); err == nil {
		t.Error("k=0: want error")
	}
	single := randomDataset(1, 24, 1)
	if _, err := ComputeDTW(single, 1, 0, 1); err != ErrTooFew {
		t.Errorf("single err = %v", err)
	}
}
