package similarity

import (
	"errors"
	"math"
	"testing"
)

// TestBlockedMatchesNaive is the ablation test for the blocked engine:
// across seeded random datasets of odd sizes — n=1..33 so every
// query/candidate block has a ragged tail, and lengths not divisible by
// the kernels' unroll widths — Compute (blocked, tiled, packed matrix)
// must produce the same top-k IDs as ComputeNaive (scalar per-pair
// oracle) with scores agreeing to 1e-12. n=1 pins the shared ErrTooFew
// behaviour.
func TestBlockedMatchesNaive(t *testing.T) {
	seedVal := int64(77)
	for n := 1; n <= 33; n += 2 {
		// Smallest length is 3, not 1: with length-1 series every pair of
		// positive scalars has cosine exactly 1, so the whole ranking is
		// one giant tie and the two paths legitimately break it on ±1ulp
		// rounding differences.
		for _, hours := range []int{3, 7, 26, 63, 95} {
			seedVal++
			d := randomDataset(n, hours, seedVal)
			blocked, errB := Compute(d, 5)
			naive, errN := ComputeNaive(d, 5)
			if n < 2 {
				if !errors.Is(errB, ErrTooFew) || !errors.Is(errN, ErrTooFew) {
					t.Fatalf("n=%d: errs = %v / %v, want ErrTooFew from both", n, errB, errN)
				}
				continue
			}
			if errB != nil || errN != nil {
				t.Fatalf("n=%d hours=%d: errs = %v / %v", n, hours, errB, errN)
			}
			if len(blocked) != len(naive) {
				t.Fatalf("n=%d hours=%d: %d vs %d results", n, hours, len(blocked), len(naive))
			}
			for i := range naive {
				b, nv := blocked[i], naive[i]
				if b.ID != nv.ID {
					t.Fatalf("n=%d hours=%d result %d: ID %d vs %d", n, hours, i, b.ID, nv.ID)
				}
				if len(b.Matches) != len(nv.Matches) {
					t.Fatalf("n=%d hours=%d consumer %d: %d vs %d matches",
						n, hours, b.ID, len(b.Matches), len(nv.Matches))
				}
				for j := range nv.Matches {
					bm, nm := b.Matches[j], nv.Matches[j]
					if bm.ID != nm.ID {
						t.Fatalf("n=%d hours=%d consumer %d match %d: ID %d vs %d",
							n, hours, b.ID, j, bm.ID, nm.ID)
					}
					if math.Abs(bm.Score-nm.Score) > 1e-12 {
						t.Fatalf("n=%d hours=%d consumer %d match %d: score %g vs %g",
							n, hours, b.ID, j, bm.Score, nm.Score)
					}
				}
			}
		}
	}
}

// TestTopKRowMatchesCompute pins the contract the distributed engines
// rely on: the per-row fan-out kernel produces bit-identical matches to
// the full blocked Compute.
func TestTopKRowMatchesCompute(t *testing.T) {
	d := randomDataset(23, 61, 5)
	full, err := Compute(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Flat()
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < m.N(); q++ {
		row := TopKRow(m, q, 4)
		want := full[q].Matches
		if len(row) != len(want) {
			t.Fatalf("row %d: %d vs %d matches", q, len(row), len(want))
		}
		for j := range want {
			if row[j] != want[j] {
				t.Fatalf("row %d match %d: %+v vs %+v", q, j, row[j], want[j])
			}
		}
	}
}

// --- Ablation benchmarks: blocked engine vs scalar oracle -------------

func BenchmarkSimilarityBlocked(b *testing.B) {
	d := randomDataset(60, 720, 1)
	if _, err := Compute(d, 10); err != nil { // build + cache the packing
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(d, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimilarityNaive(b *testing.B) {
	d := randomDataset(60, 720, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeNaive(d, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimilarityBlockedParallel(b *testing.B) {
	d := randomDataset(60, 720, 1)
	if _, err := Compute(d, 10); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeParallel(d, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}
