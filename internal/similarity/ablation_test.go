package similarity

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// computeNaive is the unoptimized all-pairs search: cosine similarity
// recomputes both norms for every pair (the ablation baseline for the
// precomputed-norm design in Compute).
func computeNaive(d *timeseries.Dataset, k int) ([]*Result, error) {
	out := make([]*Result, 0, len(d.Series))
	for _, s := range d.Series {
		tk := timeseries.NewTopK(k)
		for _, o := range d.Series {
			if o.ID == s.ID {
				continue
			}
			score, err := timeseries.CosineSimilarity(s.Readings, o.Readings)
			if err != nil {
				return nil, err
			}
			tk.Add(o.ID, score)
		}
		out = append(out, &Result{ID: s.ID, Matches: tk.Results()})
	}
	return out, nil
}

func TestComputeMatchesNaive(t *testing.T) {
	d := randomDataset(25, 96, 77)
	fast, err := Compute(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := computeNaive(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range naive {
		if fast[i].ID != naive[i].ID {
			t.Fatalf("result %d: ID mismatch", i)
		}
		for j := range naive[i].Matches {
			f, n := fast[i].Matches[j], naive[i].Matches[j]
			if f.ID != n.ID || f.Score != n.Score {
				t.Fatalf("consumer %d match %d: %+v vs %+v", fast[i].ID, j, f, n)
			}
		}
	}
}

// Ablation: precomputed norms vs recomputing norms per pair.
func BenchmarkSimilarityPrecomputedNorms(b *testing.B) {
	d := randomDataset(60, 720, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(d, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimilarityNaiveNorms(b *testing.B) {
	d := randomDataset(60, 720, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := computeNaive(d, 10); err != nil {
			b.Fatal(err)
		}
	}
}
