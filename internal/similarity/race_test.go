package similarity

import (
	"reflect"
	"testing"
)

// TestComputeParallelRace is the race-regression test for the blocked
// cosine engine: workers pull query blocks off the shared atomic
// counter in sched.Run, read the shared FlatMatrix, and write disjoint
// out[i] slots through per-worker score tiles. Under -race this
// validates the sharing; the equality check pins parallel == sequential
// determinism (per-pair scores depend only on the candidate tiling, so
// they are bit-identical at any worker count).
func TestComputeParallelRace(t *testing.T) {
	d := randomDataset(32, 48, 7)
	seq, err := Compute(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ComputeParallel(d, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel cosine results differ from sequential")
	}
}

// TestComputeParallelRaceOddShape stresses the dynamic scheduler with
// far more workers than query blocks (n=29, queryBlock=8 -> 4 blocks,
// 16 workers) and a length not divisible by the kernel unroll widths,
// so block claiming, worker capping, and ragged tails all race under
// -race at once.
func TestComputeParallelRaceOddShape(t *testing.T) {
	d := randomDataset(29, 53, 11)
	seq, err := Compute(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		par, err := ComputeParallel(d, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: parallel results differ from sequential", workers)
		}
	}
}

// TestComputeDTWRace covers the DTW path, which shares the same
// sched.Run scheduler with a block size of one query per claim:
// disjoint out slots per worker, read-only input series.
func TestComputeDTWRace(t *testing.T) {
	d := randomDataset(16, 24, 9)
	a, err := ComputeDTW(d, 3, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeDTW(d, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("parallel DTW results differ from sequential")
	}
}
