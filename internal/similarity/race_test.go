package similarity

import (
	"reflect"
	"testing"
)

// TestComputeParallelRace is the race-regression test for the cosine
// worker pool (similarity.go): workers share the read-only norms slice
// and write disjoint out[i] slots. Under -race this validates the
// sharing; the equality check pins parallel == sequential determinism.
func TestComputeParallelRace(t *testing.T) {
	d := randomDataset(32, 48, 7)
	seq, err := Compute(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ComputeParallel(d, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel cosine results differ from sequential")
	}
}

// TestComputeDTWRace covers the DTW worker pool the same way: disjoint
// out/errs slots per worker, read-only input series.
func TestComputeDTWRace(t *testing.T) {
	d := randomDataset(16, 24, 9)
	a, err := ComputeDTW(d, 3, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeDTW(d, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("parallel DTW results differ from sequential")
	}
}
