// Package similarity implements benchmark task 4 (paper §3.4): for each
// of the n consumption series, find the top-k most similar other series
// under cosine similarity. The task is O(n²) in the number of consumers
// and is the benchmark's stress test for pairwise computation.
package similarity

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// DefaultK is the k fixed by the benchmark definition (top-10).
const DefaultK = 10

// Result is the top-k match list for one consumer, ordered best-first.
type Result struct {
	ID      timeseries.ID
	Matches []timeseries.Match
}

// ErrTooFew is returned when the dataset has fewer than two series.
var ErrTooFew = errors.New("similarity: need at least two series")

// Compute finds the top-k most cosine-similar other consumers for every
// consumer, sequentially (the paper's single-threaded loop).
func Compute(d *timeseries.Dataset, k int) ([]*Result, error) {
	return compute(d, k, 1)
}

// ComputeParallel is Compute with the pairwise work split across the
// given number of goroutines (0 means GOMAXPROCS). Each worker owns a
// contiguous range of query series, mirroring the paper's §5.3.4
// parallelization ("each task is allocated a fraction of the time series
// and computes the similarity of its time series with every other").
func ComputeParallel(d *timeseries.Dataset, k, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return compute(d, k, workers)
}

func compute(d *timeseries.Dataset, k, workers int) ([]*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("similarity: k must be positive, got %d", k)
	}
	n := len(d.Series)
	if n < 2 {
		return nil, ErrTooFew
	}
	for _, s := range d.Series {
		if len(s.Readings) != len(d.Series[0].Readings) {
			return nil, fmt.Errorf("similarity: series %d length %d differs from %d",
				s.ID, len(s.Readings), len(d.Series[0].Readings))
		}
	}

	// Precompute norms once: cos(x,y) = x.y/(|x||y|).
	norms := make([]float64, n)
	for i, s := range d.Series {
		norms[i] = stats.Norm(s.Readings)
	}

	out := make([]*Result, n)
	var firstErr error
	var errOnce sync.Once

	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tk := timeseries.NewTopK(k)
			si := d.Series[i]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				dot, err := stats.Dot(si.Readings, d.Series[j].Readings)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				var score float64
				if !stats.IsZero(norms[i]) && !stats.IsZero(norms[j]) {
					score = dot / (norms[i] * norms[j])
				}
				tk.Add(d.Series[j].ID, score)
			}
			out[i] = &Result{ID: si.ID, Matches: tk.Results()}
		}
	}

	if workers <= 1 {
		work(0, n)
	} else {
		if workers > n {
			workers = n
		}
		var wg sync.WaitGroup
		per := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := lo + per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				work(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// PairScore returns the cosine similarity between two series in the
// dataset, primarily for tests and spot checks.
func PairScore(a, b *timeseries.Series) (float64, error) {
	return timeseries.CosineSimilarity(a.Readings, b.Readings)
}

// ComputeDTW is an alternative similarity search using dynamic time
// warping distance (the other canonical measure in the time-series
// benchmark the paper builds on) instead of cosine similarity. Matches
// are ranked by ascending DTW distance; Match.Score holds the negated
// distance so the shared Result type's best-first ordering applies.
// The radius is the Sakoe-Chiba band (0 = unconstrained).
func ComputeDTW(d *timeseries.Dataset, k, radius, workers int) ([]*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("similarity: k must be positive, got %d", k)
	}
	n := len(d.Series)
	if n < 2 {
		return nil, ErrTooFew
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]*Result, n)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				tk := timeseries.NewTopK(k)
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					dist, err := timeseries.DTWDistance(d.Series[i].Readings, d.Series[j].Readings, radius)
					if err != nil {
						errs[w] = err
						return
					}
					tk.Add(d.Series[j].ID, -dist)
				}
				out[i] = &Result{ID: d.Series[i].ID, Matches: tk.Results()}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
