// Package similarity implements benchmark task 4 (paper §3.4): for each
// of the n consumption series, find the top-k most similar other series
// under cosine similarity. The task is O(n²) in the number of consumers
// and is the benchmark's stress test for pairwise computation — "by far
// the most expensive" workload in the paper's evaluation (§5.3.4).
//
// The engine is blocked, symmetric, and load-balanced: the dataset is
// packed into a contiguous row-major timeseries.FlatMatrix with
// precomputed inverse norms (zero-copy when the storage engine already
// lays series out that way); the n x n score space is tiled into square
// blocks and each unordered tile pair is computed once — cosine is
// symmetric, so an off-diagonal tile's scores feed both the query
// block's and the candidate block's top-k heaps, halving the dot-product
// work; scores are produced a register tile at a time by
// stats.CosineTile — fused Dot4/Dot2 passes that reuse each row while
// it is cache-hot — and parallel runs pull tile pairs off a shared
// atomic counter (internal/sched) so stragglers cannot inherit an
// oversized static range. Every kernel lane shares one accumulation
// pattern (see internal/stats), so a pair's score is a pure function of
// the two rows and the output is bit-identical at any worker count and
// across Compute/TopKRow. ComputeNaive keeps the original scalar
// per-pair path as the correctness oracle and ablation baseline.
package similarity

import (
	"errors"
	"fmt"
	"runtime"

	"github.com/smartmeter/smartbench/internal/sched"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// DefaultK is the k fixed by the benchmark definition (top-10).
const DefaultK = 10

const (
	// tileSize is the edge of the square score tiles the symmetric
	// engine schedules: small enough that even modest datasets yield
	// plenty of tile pairs to balance across workers, large enough that
	// each claimed pair amortizes its scheduling and heap overhead over
	// tileSize² fused dot products.
	tileSize = 8
	// candBlock is the number of candidate rows TopKRow scores per tile
	// pass when a distributed engine scans one query row against the
	// whole table.
	candBlock = 64
	// dtwBlock is the scheduler block for the DTW path, where a single
	// query already costs O(n * len²) — one query per claim balances
	// best.
	dtwBlock = 1
)

// Result is the top-k match list for one consumer, ordered best-first.
type Result struct {
	ID      timeseries.ID
	Matches []timeseries.Match
}

// ErrTooFew is returned when the dataset has fewer than two series.
var ErrTooFew = errors.New("similarity: need at least two series")

// ErrEmptySeries is returned when the series have no readings. Without
// this check a dataset of equal-length zero-reading series would
// "succeed" with every score silently zero, since each dot product and
// norm is an empty sum. Note the contract for the distinct zero-NORM
// case: a series whose readings are all zero (but present) scores 0
// against every candidate — a flat consumer is similar to nothing —
// and that is deliberate, not an error.
var ErrEmptySeries = errors.New("similarity: series have no readings")

// validate applies the shared argument checks and returns the number of
// series.
func validate(d *timeseries.Dataset, k int) (int, error) {
	if k <= 0 {
		return 0, fmt.Errorf("similarity: k must be positive, got %d", k)
	}
	n := len(d.Series)
	if n < 2 {
		return 0, ErrTooFew
	}
	length := len(d.Series[0].Readings)
	for _, s := range d.Series {
		if len(s.Readings) != length {
			return 0, fmt.Errorf("similarity: series %d length %d differs from %d",
				s.ID, len(s.Readings), length)
		}
	}
	if length == 0 {
		return 0, ErrEmptySeries
	}
	return n, nil
}

// Compute finds the top-k most cosine-similar other consumers for every
// consumer using the blocked kernel on a single goroutine.
func Compute(d *timeseries.Dataset, k int) ([]*Result, error) {
	return computeBlocked(d, k, 1)
}

// ComputeParallel is Compute with the query blocks dynamically
// scheduled across the given number of goroutines (0 means GOMAXPROCS).
// Workers claim fixed-size query blocks off a shared counter — the
// paper's §5.3.4 parallelization, but load-balanced instead of giving
// each task one static fraction of the series. Output is identical to
// Compute regardless of the worker count.
func ComputeParallel(d *timeseries.Dataset, k, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return computeBlocked(d, k, workers)
}

func computeBlocked(d *timeseries.Dataset, k, workers int) ([]*Result, error) {
	n, err := validate(d, k)
	if err != nil {
		return nil, err
	}
	m, err := d.Flat()
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	// The n x n score space is tiled into square blocks; only the upper
	// triangle of tile pairs (I <= J) is computed, since an off-diagonal
	// tile's scores serve both orientations. Workers claim tile pairs
	// off the shared counter and collect matches into private per-row
	// heaps; the merge below is deterministic because top-k selection
	// under the total (score, ID) order does not depend on insertion
	// order, and every pair's score is bit-pure (see stats.CosineTile).
	tiles := (n + tileSize - 1) / tileSize
	pairs := tiles * (tiles + 1) / 2
	buf := make([][]float64, workers)
	heaps := make([][]*timeseries.TopK, workers)
	for w := 0; w < workers; w++ {
		buf[w] = make([]float64, tileSize*tileSize)
		heaps[w] = make([]*timeseries.TopK, n)
	}
	if err := sched.Run(pairs, 1, workers, func(w, lo, hi int) error {
		for t := lo; t < hi; t++ {
			i, j := tilePair(t, tiles)
			scanPair(m, buf[w], heaps[w], i, j, k)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]*Result, n)
	for r := 0; r < n; r++ {
		var tk *timeseries.TopK
		for w := 0; w < workers; w++ {
			h := heaps[w][r]
			if h == nil {
				continue
			}
			if tk == nil {
				tk = h
				continue
			}
			for _, mt := range h.Results() {
				tk.Add(mt.ID, mt.Score)
			}
		}
		out[r] = &Result{ID: m.ID(r), Matches: tk.Results()}
	}
	return out, nil
}

// tilePair maps a linear index into the upper triangle of tile pairs:
// t = 0 .. tiles*(tiles+1)/2 - 1 enumerates (0,0), (0,1), ...,
// (0,tiles-1), (1,1), ... row by row.
func tilePair(t, tiles int) (i, j int) {
	for i = 0; i < tiles; i++ {
		row := tiles - i
		if t < row {
			return i, i + t
		}
		t -= row
	}
	panic("similarity: tile pair index out of range")
}

// scanPair scores tile pair (ti, tj) and feeds the per-row heaps. For a
// diagonal pair the full square is computed (both orientations of each
// in-tile pair appear directly); for an off-diagonal pair each score is
// added under both orientations — cosine is symmetric, and the kernels
// make the mirrored score bit-identical to a direct computation.
func scanPair(m *timeseries.FlatMatrix, tile []float64, heaps []*timeseries.TopK, ti, tj, k int) {
	n, length := m.N(), m.Len()
	qlo, qhi := ti*tileSize, min((ti+1)*tileSize, n)
	clo, chi := tj*tileSize, min((tj+1)*tileSize, n)
	qn, cn := qhi-qlo, chi-clo
	data, inv := m.Data(), m.InvNorms()
	stats.CosineTile(tile[:qn*cn], data[qlo*length:qhi*length], data[clo*length:chi*length],
		qn, cn, length, inv[qlo:qhi], inv[clo:chi])
	for qi := 0; qi < qn; qi++ {
		q := qlo + qi
		row := tile[qi*cn : (qi+1)*cn]
		for ci, score := range row {
			c := clo + ci
			if c == q {
				continue
			}
			addMatch(heaps, q, m.ID(c), score, k)
			if ti != tj {
				addMatch(heaps, c, m.ID(q), score, k)
			}
		}
	}
}

// addMatch offers a score to row r's heap, allocating it lazily — a
// worker only materializes heaps for rows its claimed tiles touch.
func addMatch(heaps []*timeseries.TopK, r int, id timeseries.ID, score float64, k int) {
	tk := heaps[r]
	if tk == nil {
		tk = timeseries.NewTopK(k)
		heaps[r] = tk
	}
	tk.Add(id, score)
}

// TopKRow returns the top-k matches for row q of a packed matrix
// against every other row, using the same tiled kernel (and therefore
// producing bit-identical scores) as Compute. It is the per-query
// building block the distributed engines use inside their simulated
// fan-out, where each partition owns a subset of query rows but scans
// the whole broadcast/replicated table.
func TopKRow(m *timeseries.FlatMatrix, q, k int) []timeseries.Match {
	n, length := m.N(), m.Len()
	data, inv := m.Data(), m.InvNorms()
	tile := make([]float64, candBlock)
	tk := timeseries.NewTopK(k)
	for clo := 0; clo < n; clo += candBlock {
		chi := clo + candBlock
		if chi > n {
			chi = n
		}
		cn := chi - clo
		stats.CosineTile(tile[:cn], data[q*length:(q+1)*length], data[clo*length:chi*length],
			1, cn, length, inv[q:q+1], inv[clo:chi])
		for ci, score := range tile[:cn] {
			if clo+ci == q {
				continue
			}
			tk.Add(m.ID(clo+ci), score)
		}
	}
	return tk.Results()
}

// ComputeNaive is the original scalar path — one checked stats.Dot per
// pair over the per-series slices, with precomputed norms — retained as
// the correctness oracle for the blocked kernel and as the ablation
// baseline the benchmarks compare against.
func ComputeNaive(d *timeseries.Dataset, k int) ([]*Result, error) {
	n, err := validate(d, k)
	if err != nil {
		return nil, err
	}
	norms := make([]float64, n)
	for i, s := range d.Series {
		norms[i] = stats.Norm(s.Readings)
	}
	out := make([]*Result, n)
	for i := 0; i < n; i++ {
		tk := timeseries.NewTopK(k)
		si := d.Series[i]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dot, err := stats.Dot(si.Readings, d.Series[j].Readings)
			if err != nil {
				return nil, err
			}
			var score float64
			if !stats.IsZero(norms[i]) && !stats.IsZero(norms[j]) {
				score = dot / (norms[i] * norms[j])
			}
			tk.Add(d.Series[j].ID, score)
		}
		out[i] = &Result{ID: si.ID, Matches: tk.Results()}
	}
	return out, nil
}

// PairScore returns the cosine similarity between two series in the
// dataset, primarily for tests and spot checks.
func PairScore(a, b *timeseries.Series) (float64, error) {
	return timeseries.CosineSimilarity(a.Readings, b.Readings)
}

// ComputeDTW is an alternative similarity search using dynamic time
// warping distance (the other canonical measure in the time-series
// benchmark the paper builds on) instead of cosine similarity. Matches
// are ranked by ascending DTW distance; Match.Score holds the negated
// distance so the shared Result type's best-first ordering applies.
// The radius is the Sakoe-Chiba band (0 = unconstrained). Queries are
// dynamically scheduled over the workers with the same block scheduler
// as the cosine path.
func ComputeDTW(d *timeseries.Dataset, k, radius, workers int) ([]*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("similarity: k must be positive, got %d", k)
	}
	n := len(d.Series)
	if n < 2 {
		return nil, ErrTooFew
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]*Result, n)
	if err := sched.Run(n, dtwBlock, workers, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			tk := timeseries.NewTopK(k)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				dist, err := timeseries.DTWDistance(d.Series[i].Readings, d.Series[j].Readings, radius)
				if err != nil {
					return err
				}
				tk.Add(d.Series[j].ID, -dist)
			}
			out[i] = &Result{ID: d.Series[i].ID, Matches: tk.Results()}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
