package par

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// syntheticHabit builds a consumer with a fixed hourly activity pattern
// plus a linear temperature response: c = act[h] + b*T + noise.
func syntheticHabit(act [timeseries.HoursPerDay]float64, b float64, days int, noise float64, seedVal int64) (*timeseries.Series, *timeseries.Temperature) {
	rng := rand.New(rand.NewSource(seedVal))
	n := days * timeseries.HoursPerDay
	temps := make([]float64, n)
	readings := make([]float64, n)
	for i := range temps {
		day := i / timeseries.HoursPerDay
		hour := i % timeseries.HoursPerDay
		temps[i] = 10 + 12*math.Sin(2*math.Pi*float64(day)/60) +
			3*math.Sin(2*math.Pi*float64(hour)/24) + rng.NormFloat64()
		readings[i] = act[hour] + b*temps[i] + rng.NormFloat64()*noise
	}
	return &timeseries.Series{ID: 1, Readings: readings},
		&timeseries.Temperature{Values: temps}
}

func TestComputeRecoversProfile(t *testing.T) {
	var act [timeseries.HoursPerDay]float64
	for h := range act {
		act[h] = 0.5 + 0.4*math.Sin(2*math.Pi*float64(h)/24)
	}
	const b = 0.05
	s, temp := syntheticHabit(act, b, 365, 0.02, 1)
	r, err := Compute(s, temp)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < timeseries.HoursPerDay; h++ {
		if math.Abs(r.Profile[h]-act[h]) > 0.08 {
			t.Errorf("Profile[%d] = %g, want ~%g", h, r.Profile[h], act[h])
		}
		if math.Abs(r.Hours[h].TempCoef-b) > 0.02 {
			t.Errorf("TempCoef[%d] = %g, want ~%g", h, r.Hours[h].TempCoef, b)
		}
		if r.Hours[h].Fallback {
			t.Errorf("hour %d unexpectedly fell back", h)
		}
		if len(r.Hours[h].ARCoef) != DefaultOrder {
			t.Errorf("hour %d has %d AR coefficients", h, len(r.Hours[h].ARCoef))
		}
	}
}

func TestProfileIgnoresTemperatureSwings(t *testing.T) {
	// Two consumers with the same habits but different thermal gain must
	// yield nearly the same profile shape (peak hour preserved).
	var act [timeseries.HoursPerDay]float64
	for h := range act {
		act[h] = 0.3
	}
	act[18] = 1.5 // evening peak
	s1, temp := syntheticHabit(act, 0.0, 365, 0.02, 2)
	s2, _ := syntheticHabit(act, 0.09, 365, 0.02, 3)
	r1, err := Compute(s1, temp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compute(s2, temp)
	if err != nil {
		t.Fatal(err)
	}
	peak1, peak2 := argmax(r1.Profile[:]), argmax(r2.Profile[:])
	if peak1 != 18 || peak2 != 18 {
		t.Errorf("peak hours = %d, %d, want 18", peak1, peak2)
	}
	// Temperature persistence leaks a little of the thermal response into
	// the AR terms, shifting the profile by a constant — so compare the
	// profile *shape* (peak height above the profile mean).
	mean1, _ := meanOf(r1.Profile[:])
	mean2, _ := meanOf(r2.Profile[:])
	rel1 := r1.Profile[18] - mean1
	rel2 := r2.Profile[18] - mean2
	if d := math.Abs(rel1 - rel2); d > 0.15 {
		t.Errorf("peak shapes differ by %g despite equal habits", d)
	}
}

func meanOf(xs []float64) (float64, error) {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func TestFallbackOnConstantConsumption(t *testing.T) {
	n := 60 * timeseries.HoursPerDay
	readings := make([]float64, n)
	temps := make([]float64, n)
	for i := range readings {
		readings[i] = 2.5 // perfectly constant => singular AR design
		temps[i] = 10
	}
	s := &timeseries.Series{ID: 1, Readings: readings}
	r, err := Compute(s, &timeseries.Temperature{Values: temps})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < timeseries.HoursPerDay; h++ {
		if !r.Hours[h].Fallback {
			t.Fatalf("hour %d: expected fallback on constant data", h)
		}
		if math.Abs(r.Profile[h]-2.5) > 1e-9 {
			t.Errorf("Profile[%d] = %g, want 2.5", h, r.Profile[h])
		}
	}
}

func TestComputeOrderValidation(t *testing.T) {
	s, temp := syntheticHabit([timeseries.HoursPerDay]float64{}, 0, 30, 0.01, 4)
	if _, err := ComputeOrder(s, temp, 0); err == nil {
		t.Error("order 0: want error")
	}
	// Too short: days - p <= p + 1.
	short, stemp := syntheticHabit([timeseries.HoursPerDay]float64{}, 0, 7, 0.01, 5)
	_, err := ComputeOrder(short, stemp, 3)
	if !errors.Is(err, ErrTooShort) {
		t.Errorf("short err = %v, want ErrTooShort", err)
	}
	// Length mismatch.
	bad := &timeseries.Series{ID: 1, Readings: make([]float64, 24)}
	if _, err := Compute(bad, temp); err == nil {
		t.Error("length mismatch: want error")
	}
	// Non-multiple-of-24 length.
	odd := &timeseries.Series{ID: 1, Readings: make([]float64, 25)}
	if _, err := Compute(odd, &timeseries.Temperature{Values: make([]float64, 25)}); err == nil {
		t.Error("bad length: want error")
	}
}

func TestComputeAll(t *testing.T) {
	var act [timeseries.HoursPerDay]float64
	for h := range act {
		act[h] = 1
	}
	s1, temp := syntheticHabit(act, 0.02, 60, 0.05, 6)
	s2, _ := syntheticHabit(act, 0.04, 60, 0.05, 7)
	s2.ID = 2
	d := &timeseries.Dataset{Series: []*timeseries.Series{s1, s2}, Temperature: temp}
	rs, err := ComputeAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[1].ID != 2 {
		t.Fatalf("results = %+v", rs)
	}
}

func TestARCapturesPersistence(t *testing.T) {
	// Consumption at hour h strongly tracks yesterday's value at h:
	// c(d) = 0.8*c(d-1) + e. The lag-1 AR coefficient should be large.
	rng := rand.New(rand.NewSource(8))
	days := 365
	n := days * timeseries.HoursPerDay
	readings := make([]float64, n)
	temps := make([]float64, n)
	for h := 0; h < timeseries.HoursPerDay; h++ {
		prev := 1.0
		for d := 0; d < days; d++ {
			v := 0.5 + 0.8*prev + rng.NormFloat64()*0.05
			readings[d*timeseries.HoursPerDay+h] = v
			prev = v
		}
	}
	s := &timeseries.Series{ID: 1, Readings: readings}
	r, err := Compute(s, &timeseries.Temperature{Values: temps})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < timeseries.HoursPerDay; h++ {
		if r.Hours[h].ARCoef[0] < 0.5 {
			t.Errorf("hour %d lag-1 coefficient = %g, want > 0.5", h, r.Hours[h].ARCoef[0])
		}
	}
}

// TestComputeOrderAllocs is the allocation-regression test for the PAR
// hot loop: the per-hour temperature/consumption column buffers are
// hoisted out of the 24-iteration loop and reused, saving 46
// allocations per consumer. Measured at 174 allocs/run after the
// hoist; the bound sits below the 220 the un-hoisted loop costs, so
// reintroducing per-hour buffers fails this test.
func TestComputeOrderAllocs(t *testing.T) {
	var act [timeseries.HoursPerDay]float64
	for h := range act {
		act[h] = 0.5 + 0.3*math.Sin(2*math.Pi*float64(h)/24)
	}
	s, temp := syntheticHabit(act, 0.05, 60, 0.02, 11)
	if _, err := ComputeOrder(s, temp, DefaultOrder); err != nil {
		t.Fatal(err)
	}
	var runErr error
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ComputeOrder(s, temp, DefaultOrder); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs > 200 {
		t.Errorf("ComputeOrder allocates %v times per run, want <= 200 (hour buffers un-hoisted?)", allocs)
	}
}
