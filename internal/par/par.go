// Package par implements benchmark task 3 (paper §3.3): the periodic
// auto-regression (PAR) algorithm of Espinoza et al. / Ardakanian et al.
// that extracts a household's typical daily profile — the expected
// consumption at each hour of the day due solely to the occupants'
// habits, with the outdoor-temperature effect removed.
//
// For each consumer and each hour of the day h, PAR fits a linear model
//
//	c(d, h) = a1*c(d-1, h) + ... + ap*c(d-p, h) + b*T(d, h) + k
//
// over the days d of the year (the paper uses p = 3).
//
// For the daily profile the temperature effect is estimated with a
// dedicated per-hour regression of consumption on temperature alone
// (slope bT). In the full AR model the lagged consumption terms — which
// carry yesterday's thermal load and correlate strongly with today's
// temperature — absorb much of the temperature coefficient, so using the
// AR model's b would leave thermal load inside the "habit" profile. The
// temperature-independent load at (d, h) is c(d, h) - bT*T(d, h); its
// mean over days is the daily-profile entry for hour h.
package par

import (
	"errors"
	"fmt"

	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// DefaultOrder is the auto-regressive order fixed by the benchmark (p=3).
const DefaultOrder = 3

// HourModel is the fitted model for one hour of the day.
type HourModel struct {
	// ARCoef holds the p auto-regressive coefficients (lag 1 first).
	ARCoef []float64
	// TempCoef is the outdoor-temperature coefficient b.
	TempCoef float64
	// Intercept is the model constant.
	Intercept float64
	// R2 is the in-sample coefficient of determination.
	R2 float64
	// Fallback is true when the regression was singular (e.g. constant
	// consumption) and the model degraded to the hour's mean.
	Fallback bool
}

// Result is the PAR output for one consumer.
type Result struct {
	ID timeseries.ID
	// Profile is the 24-entry daily profile: expected temperature-
	// independent consumption at each hour of the day.
	Profile [timeseries.HoursPerDay]float64
	// Hours holds the 24 fitted hourly models.
	Hours [timeseries.HoursPerDay]HourModel
}

// ErrTooShort is returned when the series has too few days for the order.
var ErrTooShort = errors.New("par: series too short for AR order")

// Compute runs PAR with the benchmark's default order p=3.
func Compute(s *timeseries.Series, temp *timeseries.Temperature) (*Result, error) {
	return ComputeOrder(s, temp, DefaultOrder)
}

// ComputeOrder runs PAR with auto-regressive order p.
func ComputeOrder(s *timeseries.Series, temp *timeseries.Temperature, p int) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("par: order must be >= 1, got %d", p)
	}
	if len(s.Readings) != len(temp.Values) {
		return nil, fmt.Errorf("par: consumer %d has %d readings but %d temperatures",
			s.ID, len(s.Readings), len(temp.Values))
	}
	if len(s.Readings)%timeseries.HoursPerDay != 0 {
		return nil, fmt.Errorf("par: consumer %d: %w", s.ID, timeseries.ErrBadLength)
	}
	days := s.Days()
	// We need more observations (days - p) than regressors (p + 1).
	if days-p <= p+1 {
		return nil, fmt.Errorf("%w: consumer %d has %d days, order %d", ErrTooShort, s.ID, days, p)
	}

	res := &Result{ID: s.ID}
	nObs := days - p
	X := make([][]float64, nObs)
	y := make([]float64, nObs)
	regressors := make([]float64, nObs*(p+1))
	// One buffer pair for the per-hour temperature column and
	// consumption column, reused across all 24 hours rather than
	// reallocated inside the loop (the PAR hot path runs once per
	// consumer, so 46 avoided allocations per call add up at scale;
	// pinned by the AllocsPerRun regression test).
	ct := make([]float64, days)
	cc := make([]float64, days)

	for h := 0; h < timeseries.HoursPerDay; h++ {
		for d := p; d < days; d++ {
			i := d - p
			row := regressors[i*(p+1) : (i+1)*(p+1)]
			for lag := 1; lag <= p; lag++ {
				row[lag-1] = s.At(d-lag, h)
			}
			row[p] = temp.Values[d*timeseries.HoursPerDay+h]
			X[i] = row
			y[i] = s.At(d, h)
		}
		hm := fitHour(X, y, p)
		res.Hours[h] = hm

		// Temperature-independent load averaged over all days, using a
		// dedicated consumption-on-temperature slope for this hour (see
		// the package comment for why the AR model's coefficient is not
		// used here).
		for d := 0; d < days; d++ {
			ct[d] = temp.Values[d*timeseries.HoursPerDay+h]
			cc[d] = s.At(d, h)
		}
		var slope float64
		if line, err := stats.LinearFit(ct, cc); err == nil {
			slope = line.Slope
		}
		var m stats.Moments
		for d := 0; d < days; d++ {
			m.Add(cc[d] - slope*ct[d])
		}
		res.Profile[h] = m.Mean()
	}
	return res, nil
}

func fitHour(X [][]float64, y []float64, p int) HourModel {
	model, err := stats.Regress(X, y)
	if err == nil {
		return HourModel{
			ARCoef:    model.Coef[:p],
			TempCoef:  model.Coef[p],
			Intercept: model.Intercept,
			R2:        model.R2,
		}
	}
	// A (near-)constant temperature column makes the full design
	// singular; retry with the AR terms only.
	ar := make([][]float64, len(X))
	for i, row := range X {
		ar[i] = row[:p]
	}
	if model, err = stats.Regress(ar, y); err == nil {
		return HourModel{
			ARCoef:    model.Coef,
			Intercept: model.Intercept,
			R2:        model.R2,
		}
	}
	// Constant consumption as well: degrade to the hour's mean.
	mean, _ := stats.Mean(y)
	return HourModel{
		ARCoef:    make([]float64, p),
		Intercept: mean,
		Fallback:  true,
	}
}

// ComputeAll runs the task for every series in the dataset.
func ComputeAll(d *timeseries.Dataset) ([]*Result, error) {
	out := make([]*Result, 0, len(d.Series))
	for _, s := range d.Series {
		r, err := Compute(s, d.Temperature)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
