package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCoversRange checks every index in [0, n) is visited exactly
// once for awkward combinations of n, block size, and worker count
// (n not divisible by block, more workers than blocks, block > n).
func TestRunCoversRange(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33, 100} {
		for _, block := range []int{1, 3, 8, 64} {
			for _, workers := range []int{1, 2, 7, 32} {
				seen := make([]atomic.Int32, n)
				err := Run(n, block, workers, func(_, lo, hi int) error {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("n=%d block=%d workers=%d: bad range [%d, %d)", n, block, workers, lo, hi)
					}
					for i := lo; i < hi; i++ {
						seen[i].Add(1)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("n=%d block=%d workers=%d: %v", n, block, workers, err)
				}
				for i := range seen {
					if got := seen[i].Load(); got != 1 {
						t.Fatalf("n=%d block=%d workers=%d: index %d visited %d times", n, block, workers, i, got)
					}
				}
			}
		}
	}
}

func TestRunEmptyRange(t *testing.T) {
	calls := 0
	if err := Run(0, 4, 8, func(_, _, _ int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("n=0 ran %d blocks", calls)
	}
}

// TestRunSequentialOrder pins the workers<=1 contract: blocks run in
// ascending order on the calling goroutine.
func TestRunSequentialOrder(t *testing.T) {
	var lows []int
	if err := Run(10, 4, 1, func(w, lo, hi int) error {
		if w != 0 {
			t.Errorf("sequential worker index = %d", w)
		}
		lows = append(lows, lo)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 4, 8}
	if len(lows) != len(want) {
		t.Fatalf("blocks = %v, want %v", lows, want)
	}
	for i := range want {
		if lows[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", lows, want)
		}
	}
}

// TestRunErrorStopsClaims checks that the first error is returned and
// that no new blocks are claimed after it surfaces.
func TestRunErrorStopsClaims(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var after atomic.Int32
		err := Run(1000, 1, workers, func(_, lo, _ int) error {
			if lo == 3 {
				return sentinel
			}
			after.Add(1)
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		// In-flight blocks may finish, but the claim counter must stop
		// well short of the full range.
		if got := after.Load(); got >= 999 {
			t.Errorf("workers=%d: %d blocks ran after error", workers, got)
		}
	}
}

// TestRunWorkerIndexes verifies worker ids address disjoint scratch:
// every reported index is within [0, workers) after clamping.
func TestRunWorkerIndexes(t *testing.T) {
	const workers = 6
	scratch := make([][]int, workers)
	var mu sync.Mutex
	err := Run(64, 2, workers, func(w, lo, hi int) error {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
		}
		mu.Lock()
		scratch[w] = append(scratch[w], lo)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunRace is the race-regression test for the shared claim counter:
// many workers hammer small blocks while writing disjoint output slots,
// which `go test -race` validates.
func TestRunRace(t *testing.T) {
	const n = 512
	out := make([]int, n)
	if err := Run(n, 3, 16, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
