// Package sched provides the dynamic block scheduler shared by the
// repository's parallel kernels (similarity search, core.RunParallel).
//
// Instead of handing each worker one static contiguous range up front —
// which strands a straggler with an oversized slice whenever n is not a
// multiple of the worker count, or when per-item cost is uneven —
// workers repeatedly claim the next fixed-size block of indices off a
// shared atomic counter until the range is exhausted. Load balancing is
// automatic: a worker that finishes a cheap block immediately pulls the
// next one, so the tail of the computation is at most one block long
// per worker.
package sched

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered from a scheduled block so a bug in
// one worker surfaces as an error on the calling goroutine instead of
// killing the process (or, with other workers parked, deadlocking it).
// The stack is captured at the panic site.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: worker panic: %v\n%s", e.Value, e.Stack)
}

// Run partitions [0, n) into blocks of the given size and executes
// fn(worker, lo, hi) once for every block.
//
// With workers <= 1 the blocks run inline on the calling goroutine, in
// ascending order. Otherwise up to workers goroutines claim blocks from
// a shared counter; fn must be safe for concurrent calls on disjoint
// [lo, hi) ranges. The worker index is in [0, workers), so callers can
// address preallocated per-worker scratch. The first error returned by
// fn stops further claims (blocks already in flight still finish) and
// is returned; which later blocks were abandoned is unspecified, so
// callers must treat their output as invalid on error. A panic in fn is
// recovered into a *PanicError and treated like a first error, on both
// the inline and the fan-out path.
func Run(n, block, workers int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if block <= 0 {
		block = 1
	}
	if blocks := (n + block - 1) / block; workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			if err := safeCall(fn, 0, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stopped.Load() {
				lo := int(next.Add(int64(block))) - block
				if lo >= n {
					return
				}
				hi := lo + block
				if hi > n {
					hi = n
				}
				if err := safeCall(fn, w, lo, hi); err != nil {
					errOnce.Do(func() { firstErr = err })
					stopped.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// safeCall invokes one block, converting a panic into a *PanicError.
func safeCall(fn func(worker, lo, hi int) error, w, lo, hi int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(w, lo, hi)
}
