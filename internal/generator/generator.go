// Package generator implements the paper's data generator (§4): it
// creates arbitrarily many realistic smart-meter series from a small seed
// of data.
//
// Pre-processing disaggregates every seed consumer:
//
//   - the PAR algorithm extracts each consumer's daily activity profile;
//   - k-means groups the profiles into clusters of similar daily habits;
//   - the 3-line algorithm records each consumer's heating and cooling
//     gradients.
//
// A new consumer is then re-aggregated from independently drawn pieces:
// a randomly chosen cluster's centroid supplies the hourly activity load,
// a randomly chosen member of that cluster supplies the thermal
// gradients, and Gaussian white noise is added:
//
//	reading(h) = activity(hour of day) +
//	             heatingGradient * max(0, Tref - T(h)) +
//	             coolingGradient * max(0, T(h) - Tref') +
//	             N(0, sigma)
//
// clamped at zero (consumption cannot be negative).
package generator

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/smartmeter/smartbench/internal/kmeans"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"

	"github.com/smartmeter/smartbench/internal/stats"
)

// Config controls generation.
type Config struct {
	// Clusters is k for the k-means step. Default 8 (clamped to the seed
	// size).
	Clusters int
	// NoiseStdDev is sigma of the white-noise component in kWh.
	// Default 0.1.
	NoiseStdDev float64
	// HeatingRef and CoolingRef are the temperature thresholds below /
	// above which thermal load accrues. Defaults 16 and 22 C.
	HeatingRef, CoolingRef float64
	// Seed seeds the deterministic PRNG used for consumer synthesis.
	Seed int64
	// FlatRate is the probability in [0, 1] that a synthesized consumer
	// is a flat load: a bit-constant series at its cluster's mean
	// hourly level, no thermal response, no noise — the unoccupied or
	// flat-tariff baseline households real feeds carry. Default 0, and
	// a zero rate draws nothing from the PRNG, so existing seeds
	// reproduce their exact historical series.
	FlatRate float64
}

// DefaultConfig returns the default generation parameters.
func DefaultConfig() Config {
	return Config{Clusters: 8, NoiseStdDev: 0.1, HeatingRef: 16, CoolingRef: 22}
}

// profileKind captures the disaggregated pieces of one seed consumer.
type gradients struct {
	heating, cooling float64
}

// Generator is a prepared data generator: the seed has been
// disaggregated and can be re-aggregated into any number of synthetic
// consumers.
type Generator struct {
	cfg       Config
	clusters  *kmeans.Result
	gradients []gradients // indexed like the seed's series
	members   [][]int     // cluster -> indexes of member consumers
	rng       *rand.Rand
	nextID    timeseries.ID
}

// ErrSeedTooSmall is returned when the seed has fewer than 2 consumers.
var ErrSeedTooSmall = errors.New("generator: seed dataset too small")

// New disaggregates the seed dataset (PAR profiles, k-means clusters,
// 3-line gradients) and returns a ready Generator.
func New(seedData *timeseries.Dataset, cfg Config) (*Generator, error) {
	if len(seedData.Series) < 2 {
		return nil, ErrSeedTooSmall
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = DefaultConfig().Clusters
	}
	if cfg.Clusters > len(seedData.Series) {
		cfg.Clusters = len(seedData.Series)
	}
	if cfg.NoiseStdDev < 0 {
		return nil, fmt.Errorf("generator: negative noise sigma %g", cfg.NoiseStdDev)
	}
	if stats.IsZero(cfg.NoiseStdDev) {
		cfg.NoiseStdDev = DefaultConfig().NoiseStdDev
	}
	if stats.IsZero(cfg.HeatingRef) && stats.IsZero(cfg.CoolingRef) {
		cfg.HeatingRef = DefaultConfig().HeatingRef
		cfg.CoolingRef = DefaultConfig().CoolingRef
	}
	if cfg.CoolingRef < cfg.HeatingRef {
		return nil, fmt.Errorf("generator: cooling ref %g below heating ref %g",
			cfg.CoolingRef, cfg.HeatingRef)
	}
	if cfg.FlatRate < 0 || cfg.FlatRate > 1 {
		return nil, fmt.Errorf("generator: flat rate %g outside [0, 1]", cfg.FlatRate)
	}

	// Step 1: PAR daily profiles for every seed consumer.
	profiles := make([][]float64, len(seedData.Series))
	for i, s := range seedData.Series {
		r, err := par.Compute(s, seedData.Temperature)
		if err != nil {
			return nil, fmt.Errorf("generator: PAR on seed consumer %d: %w", s.ID, err)
		}
		p := make([]float64, timeseries.HoursPerDay)
		copy(p, r.Profile[:])
		profiles[i] = p
	}

	// Step 2: cluster the profiles.
	cl, err := kmeans.Run(profiles, kmeans.Config{K: cfg.Clusters, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("generator: clustering profiles: %w", err)
	}

	// Step 3: 3-line gradients for every seed consumer.
	grads := make([]gradients, len(seedData.Series))
	for i, s := range seedData.Series {
		r, err := threeline.Compute(s, seedData.Temperature)
		if err != nil {
			return nil, fmt.Errorf("generator: 3-line on seed consumer %d: %w", s.ID, err)
		}
		grads[i] = gradients{
			heating: math.Max(0, r.HeatingGradient),
			cooling: math.Max(0, r.CoolingGradient),
		}
	}

	members := make([][]int, cfg.Clusters)
	for i, c := range cl.Assign {
		members[c] = append(members[c], i)
	}

	return &Generator{
		cfg:       cfg,
		clusters:  cl,
		gradients: grads,
		members:   members,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		nextID:    1,
	}, nil
}

// Clusters exposes the activity-profile clustering (for inspection and
// the segmentation example).
func (g *Generator) Clusters() *kmeans.Result { return g.clusters }

// NextSeries synthesizes one new consumer against the given temperature
// series, assigning sequential IDs starting at 1.
func (g *Generator) NextSeries(temp *timeseries.Temperature) (*timeseries.Series, error) {
	id := g.nextID
	g.nextID++
	return g.Series(id, temp)
}

// Series synthesizes one new consumer with an explicit ID.
func (g *Generator) Series(id timeseries.ID, temp *timeseries.Temperature) (*timeseries.Series, error) {
	readings := make([]float64, len(temp.Values))
	if err := g.SeriesInto(readings, temp); err != nil {
		return nil, err
	}
	return &timeseries.Series{ID: id, Readings: readings}, nil
}

// SeriesInto synthesizes one new consumer's readings directly into dst,
// which must be exactly len(temp.Values) long. It is the streaming
// variant of Series: callers generating millions of consumers reuse one
// buffer and hand each filled row to a streaming sink (the column
// store's SegmentWriter, a CSV encoder) instead of materializing the
// whole matrix. The PRNG consumption per consumer is identical to
// Series, so a streamed run and a materialized run with the same seed
// produce the same readings.
func (g *Generator) SeriesInto(dst []float64, temp *timeseries.Temperature) error {
	if len(temp.Values) == 0 || len(temp.Values)%timeseries.HoursPerDay != 0 {
		return fmt.Errorf("generator: temperature series of %d values: %w",
			len(temp.Values), timeseries.ErrBadLength)
	}
	if len(dst) != len(temp.Values) {
		return fmt.Errorf("generator: dst of %d values for %d temperatures: %w",
			len(dst), len(temp.Values), timeseries.ErrBadLength)
	}
	// Select a random activity-profile cluster, then a random member of
	// that cluster for the thermal gradients (paper Figure 3).
	c := g.rng.Intn(len(g.members))
	for len(g.members[c]) == 0 { // skip empty clusters (possible after re-seeding)
		c = g.rng.Intn(len(g.members))
	}
	centroid := g.clusters.Centroids[c]
	// Flat consumers carry their cluster's mean hourly level in every
	// slot: bit-constant, no thermal or noise terms. The extra PRNG
	// draw happens only when FlatRate is set, so a zero rate consumes
	// the stream exactly as before.
	if g.cfg.FlatRate > 0 && g.rng.Float64() < g.cfg.FlatRate {
		level := 0.0
		for _, v := range centroid {
			level += v
		}
		level /= float64(len(centroid))
		if level < 0 {
			level = 0
		}
		for i := range dst {
			dst[i] = level
		}
		return nil
	}
	member := g.members[c][g.rng.Intn(len(g.members[c]))]
	grad := g.gradients[member]

	for i := range dst {
		hour := i % timeseries.HoursPerDay
		t := temp.Values[i]
		v := centroid[hour] +
			grad.heating*math.Max(0, g.cfg.HeatingRef-t) +
			grad.cooling*math.Max(0, t-g.cfg.CoolingRef) +
			g.rng.NormFloat64()*g.cfg.NoiseStdDev
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
	return nil
}

// Dataset synthesizes n new consumers sharing the given temperature
// series, with IDs 1..n.
func (g *Generator) Dataset(n int, temp *timeseries.Temperature) (*timeseries.Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("generator: n must be positive, got %d", n)
	}
	series := make([]*timeseries.Series, n)
	for i := range series {
		s, err := g.Series(timeseries.ID(i+1), temp)
		if err != nil {
			return nil, err
		}
		series[i] = s
	}
	return &timeseries.Dataset{Series: series, Temperature: temp}, nil
}
