package generator

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/weather"
)

func seedDataset(t *testing.T, consumers, days int) *timeseries.Dataset {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewAndDataset(t *testing.T) {
	seedDS := seedDataset(t, 12, 120)
	g, err := New(seedDS, Config{Clusters: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Clusters().Centroids); got != 4 {
		t.Fatalf("clusters = %d", got)
	}
	out, err := g.Dataset(30, seedDS.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("synthetic dataset invalid: %v", err)
	}
	if len(out.Series) != 30 {
		t.Fatalf("series = %d", len(out.Series))
	}
	for i, s := range out.Series {
		if s.ID != timeseries.ID(i+1) {
			t.Errorf("series %d ID = %d", i, s.ID)
		}
	}
}

func TestSyntheticConsumersAreRealistic(t *testing.T) {
	seedDS := seedDataset(t, 15, 365)
	g, err := New(seedDS, Config{Clusters: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Dataset(10, seedDS.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	// Mean consumption of synthetic consumers within the seed's range
	// (order-of-magnitude realism).
	seedMeans := datasetMeanRange(seedDS)
	for _, s := range out.Series {
		m, _ := stats.Mean(s.Readings)
		if m < seedMeans[0]*0.3 || m > seedMeans[1]*3 {
			t.Errorf("synthetic consumer %d mean %g outside seed range [%g, %g]",
				s.ID, m, seedMeans[0], seedMeans[1])
		}
	}
	// Synthetic consumers must respond to temperature: the 3-line
	// algorithm should find a positive heating gradient for at least
	// most of them (the seed climate is heating-dominated).
	positive := 0
	for _, s := range out.Series {
		r, err := threeline.Compute(s, out.Temperature)
		if err != nil {
			t.Fatalf("3-line on synthetic consumer: %v", err)
		}
		if r.HeatingGradient > 0 {
			positive++
		}
	}
	if positive < len(out.Series)*2/3 {
		t.Errorf("only %d/%d synthetic consumers show heating response", positive, len(out.Series))
	}
}

func datasetMeanRange(d *timeseries.Dataset) [2]float64 {
	lo, hi := 1e18, -1e18
	for _, s := range d.Series {
		m, _ := stats.Mean(s.Readings)
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	return [2]float64{lo, hi}
}

func TestGeneratorDeterministic(t *testing.T) {
	seedDS := seedDataset(t, 8, 90)
	g1, err := New(seedDS, Config{Clusters: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(seedDS, Config{Clusters: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g1.Dataset(5, seedDS.Temperature)
	b, _ := g2.Dataset(5, seedDS.Temperature)
	for i := range a.Series {
		for j := range a.Series[i].Readings {
			if a.Series[i].Readings[j] != b.Series[i].Readings[j] {
				t.Fatal("same seed produced different synthetic data")
			}
		}
	}
}

func TestNextSeriesSequentialIDs(t *testing.T) {
	seedDS := seedDataset(t, 6, 60)
	g, err := New(seedDS, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := g.NextSeries(seedDS.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := g.NextSeries(seedDS.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID != 1 || s2.ID != 2 {
		t.Errorf("IDs = %d, %d", s1.ID, s2.ID)
	}
}

func TestSeriesAgainstDifferentTemperatureYear(t *testing.T) {
	// The generator can synthesize against any temperature series, e.g.
	// a different weather year (paper: "we then need to input a
	// temperature time series for the new consumer").
	seedDS := seedDataset(t, 6, 365)
	g, err := New(seedDS, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	otherYear := weather.GenerateYear(999)
	s, err := g.Series(50, otherYear)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != 50 || len(s.Readings) != len(otherYear.Values) {
		t.Errorf("series = %d readings, ID %d", len(s.Readings), s.ID)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewErrors(t *testing.T) {
	tiny := &timeseries.Dataset{Series: []*timeseries.Series{{ID: 1}}}
	if _, err := New(tiny, Config{}); err != ErrSeedTooSmall {
		t.Errorf("tiny seed err = %v", err)
	}
	seedDS := seedDataset(t, 5, 60)
	if _, err := New(seedDS, Config{NoiseStdDev: -1}); err == nil {
		t.Error("negative sigma: want error")
	}
	if _, err := New(seedDS, Config{HeatingRef: 25, CoolingRef: 10}); err == nil {
		t.Error("inverted refs: want error")
	}
	// Clusters above seed size are clamped, not an error.
	g, err := New(seedDS, Config{Clusters: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Clusters().Centroids) != 5 {
		t.Errorf("clamped clusters = %d, want 5", len(g.Clusters().Centroids))
	}
}

func TestDatasetErrors(t *testing.T) {
	seedDS := seedDataset(t, 5, 60)
	g, err := New(seedDS, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Dataset(0, seedDS.Temperature); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := g.Series(1, &timeseries.Temperature{Values: make([]float64, 25)}); err == nil {
		t.Error("bad temperature length: want error")
	}
}

func TestSeriesIntoMatchesSeries(t *testing.T) {
	seedDS := seedDataset(t, 6, 60)
	g1, err := New(seedDS, Config{Clusters: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(seedDS, Config{Clusters: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, len(seedDS.Temperature.Values))
	for i := 0; i < 4; i++ {
		s, err := g1.Series(timeseries.ID(i+1), seedDS.Temperature)
		if err != nil {
			t.Fatal(err)
		}
		if err := g2.SeriesInto(buf, seedDS.Temperature); err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			if !stats.ExactEqual(buf[j], s.Readings[j]) {
				t.Fatalf("consumer %d reading %d: streamed %g vs materialized %g",
					i+1, j, buf[j], s.Readings[j])
			}
		}
	}
}

func TestSeriesIntoBadLength(t *testing.T) {
	seedDS := seedDataset(t, 6, 60)
	g, err := New(seedDS, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	short := make([]float64, len(seedDS.Temperature.Values)-1)
	if err := g.SeriesInto(short, seedDS.Temperature); err == nil {
		t.Fatal("short dst accepted")
	}
}

// TestFlatRateZeroPreservesStream pins the compatibility contract: a
// generator with FlatRate left at zero consumes the PRNG exactly as
// before, so historical seeds keep reproducing their series bit-exactly.
func TestFlatRateZeroPreservesStream(t *testing.T) {
	seedDS := seedDataset(t, 8, 60)
	plain, err := New(seedDS, Config{Clusters: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := New(seedDS, Config{Clusters: 3, Seed: 11, FlatRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := plain.Dataset(6, seedDS.Temperature)
	b, _ := explicit.Dataset(6, seedDS.Temperature)
	for i := range a.Series {
		for j, v := range a.Series[i].Readings {
			if v != b.Series[i].Readings[j] {
				t.Fatal("FlatRate: 0 changed the synthesis stream")
			}
		}
	}
}

// TestFlatRateProducesConstants checks flat consumers are bit-constant
// (block-constant on disk) and appear at roughly the requested rate.
func TestFlatRateProducesConstants(t *testing.T) {
	seedDS := seedDataset(t, 8, 60)
	g, err := New(seedDS, Config{Clusters: 3, Seed: 5, FlatRate: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	flat := 0
	buf := make([]float64, len(seedDS.Temperature.Values))
	for i := 0; i < n; i++ {
		if err := g.SeriesInto(buf, seedDS.Temperature); err != nil {
			t.Fatal(err)
		}
		constant := true
		for _, v := range buf[1:] {
			if v != buf[0] {
				constant = false
				break
			}
		}
		if constant {
			flat++
		}
	}
	if flat < n/5 || flat > 3*n/5 {
		t.Fatalf("%d/%d flat consumers at rate 0.4", flat, n)
	}
}

// TestFlatRateValidation checks out-of-range rates are rejected.
func TestFlatRateValidation(t *testing.T) {
	seedDS := seedDataset(t, 6, 30)
	for _, rate := range []float64{-0.1, 1.5} {
		if _, err := New(seedDS, Config{Clusters: 3, FlatRate: rate}); err == nil {
			t.Fatalf("rate %g accepted", rate)
		}
	}
}
