package meterdata

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func testDataset(t *testing.T, consumers, days int) *timeseries.Dataset {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func datasetsEqual(t *testing.T, a, b *timeseries.Dataset) {
	t.Helper()
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series count %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if a.Series[i].ID != b.Series[i].ID {
			t.Fatalf("series %d ID %d vs %d", i, a.Series[i].ID, b.Series[i].ID)
		}
		if len(a.Series[i].Readings) != len(b.Series[i].Readings) {
			t.Fatalf("series %d len %d vs %d", i, len(a.Series[i].Readings), len(b.Series[i].Readings))
		}
		for j := range a.Series[i].Readings {
			x, y := a.Series[i].Readings[j], b.Series[i].Readings[j]
			if diff := x - y; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("series %d reading %d: %g vs %g", i, j, x, y)
			}
		}
	}
	if len(a.Temperature.Values) != len(b.Temperature.Values) {
		t.Fatalf("temperature len %d vs %d", len(a.Temperature.Values), len(b.Temperature.Values))
	}
	for i := range a.Temperature.Values {
		x, y := a.Temperature.Values[i], b.Temperature.Values[i]
		if diff := x - y; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("temperature %d: %g vs %g", i, x, y)
		}
	}
}

func TestRoundTripUnpartitionedReadingPerLine(t *testing.T) {
	ds := testDataset(t, 4, 5)
	dir := t.TempDir()
	src, err := WriteUnpartitioned(dir, ds, FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.DataFiles) != 1 || src.Partitioned {
		t.Fatalf("source = %+v", src)
	}
	got, err := ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, got)
}

func TestRoundTripUnpartitionedSeriesPerLine(t *testing.T) {
	ds := testDataset(t, 4, 5)
	dir := t.TempDir()
	src, err := WriteUnpartitioned(dir, ds, FormatSeriesPerLine)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, got)
}

func TestRoundTripPartitioned(t *testing.T) {
	ds := testDataset(t, 6, 3)
	dir := t.TempDir()
	src, err := WritePartitioned(dir, ds, FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.DataFiles) != 6 || !src.Partitioned {
		t.Fatalf("source = %+v", src)
	}
	got, err := ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, got)

	// Each partition file holds exactly one consumer.
	series, err := ReadSeriesFile(filepath.Join(dir, src.DataFiles[0]), src.Format)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("partition holds %d series", len(series))
	}
}

func TestRoundTripGrouped(t *testing.T) {
	ds := testDataset(t, 10, 2)
	dir := t.TempDir()
	src, err := WriteGrouped(dir, ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.DataFiles) != 3 {
		t.Fatalf("files = %v", src.DataFiles)
	}
	got, err := ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, got)

	// No household may be scattered across files.
	seen := map[timeseries.ID]string{}
	for _, name := range src.DataFiles {
		series, err := ReadSeriesFile(filepath.Join(dir, name), FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range series {
			if prev, ok := seen[s.ID]; ok {
				t.Fatalf("household %d in both %s and %s", s.ID, prev, name)
			}
			seen[s.ID] = name
			if len(s.Readings) != len(ds.Temperature.Values) {
				t.Fatalf("household %d has partial series in %s", s.ID, name)
			}
		}
	}
	if len(seen) != 10 {
		t.Fatalf("only %d households recovered", len(seen))
	}
}

func TestWriteGroupedMoreFilesThanConsumers(t *testing.T) {
	ds := testDataset(t, 3, 1)
	src, err := WriteGrouped(t.TempDir(), ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.DataFiles) != 3 {
		t.Fatalf("files = %d, want clamped to 3", len(src.DataFiles))
	}
	if _, err := WriteGrouped(t.TempDir(), ds, 0); err == nil {
		t.Error("numFiles=0: want error")
	}
}

func TestDiscoverSource(t *testing.T) {
	ds := testDataset(t, 5, 2)
	for _, tc := range []struct {
		name  string
		write func(dir string) (*Source, error)
	}{
		{"unpart-rpl", func(d string) (*Source, error) { return WriteUnpartitioned(d, ds, FormatReadingPerLine) }},
		{"unpart-spl", func(d string) (*Source, error) { return WriteUnpartitioned(d, ds, FormatSeriesPerLine) }},
		{"part", func(d string) (*Source, error) { return WritePartitioned(d, ds, FormatReadingPerLine) }},
		{"grouped", func(d string) (*Source, error) { return WriteGrouped(d, ds, 2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			want, err := tc.write(dir)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DiscoverSource(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got.Format != want.Format || got.Partitioned != want.Partitioned {
				t.Errorf("discovered %+v, want %+v", got, want)
			}
			if len(got.DataFiles) != len(want.DataFiles) {
				t.Errorf("files %d vs %d", len(got.DataFiles), len(want.DataFiles))
			}
			back, err := ReadDataset(got)
			if err != nil {
				t.Fatal(err)
			}
			datasetsEqual(t, ds, back)
		})
	}
}

func TestDiscoverSourceErrors(t *testing.T) {
	if _, err := DiscoverSource(t.TempDir()); err == nil {
		t.Error("empty dir: want error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, TemperatureFile), []byte("0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverSource(dir); err == nil {
		t.Error("no data files: want error")
	}
	if _, err := DiscoverSource(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir: want error")
	}
}

func TestTotalBytes(t *testing.T) {
	ds := testDataset(t, 2, 1)
	dir := t.TempDir()
	src, err := WriteUnpartitioned(dir, ds, FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	n, err := src.TotalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("TotalBytes = %d", n)
	}
}

func TestParseReadingLineErrors(t *testing.T) {
	for _, bad := range []string{"", "1", "1,2", "x,2,3", "1,y,3", "1,2,z"} {
		if _, err := ParseReadingLine(bad); err == nil {
			t.Errorf("ParseReadingLine(%q): want error", bad)
		}
	}
	rd, err := ParseReadingLine("42,7,1.25")
	if err != nil {
		t.Fatal(err)
	}
	if rd.ID != 42 || rd.Hour != 7 || rd.Consumption != 1.25 {
		t.Errorf("parsed = %+v", rd)
	}
}

func TestParseSeriesLineErrors(t *testing.T) {
	for _, bad := range []string{"", "1", "x,1.0", "1,abc"} {
		if _, err := ParseSeriesLine(bad); err == nil {
			t.Errorf("ParseSeriesLine(%q): want error", bad)
		}
	}
	s, err := ParseSeriesLine("5,1.0,2.5,0")
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != 5 || len(s.Readings) != 3 || s.Readings[1] != 2.5 {
		t.Errorf("parsed = %+v", s)
	}
}

func TestScanSkipsBlankLines(t *testing.T) {
	input := "1,0,1.5\n\n1,1,2.5\n"
	var rows []Reading
	err := ScanReadings(strings.NewReader(input), func(r Reading) error {
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestReadTemperatureErrors(t *testing.T) {
	if _, err := ReadTemperature(t.TempDir()); err == nil {
		t.Error("missing file: want error")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, TemperatureFile), []byte(""), 0o644)
	if _, err := ReadTemperature(dir); err == nil {
		t.Error("empty file: want error")
	}
	os.WriteFile(filepath.Join(dir, TemperatureFile), []byte("nocomma\n"), 0o644)
	if _, err := ReadTemperature(dir); err == nil {
		t.Error("malformed row: want error")
	}
	os.WriteFile(filepath.Join(dir, TemperatureFile), []byte("0,abc\n"), 0o644)
	if _, err := ReadTemperature(dir); err == nil {
		t.Error("bad value: want error")
	}
}

func TestFormatString(t *testing.T) {
	if FormatReadingPerLine.String() != "reading-per-line" ||
		FormatSeriesPerLine.String() != "series-per-line" {
		t.Error("Format.String mismatch")
	}
	if !strings.Contains(Format(99).String(), "99") {
		t.Error("unknown format String")
	}
}

// Property: any valid dataset round-trips through every layout.
func TestRoundTripPropertyQuick(t *testing.T) {
	f := func(seedVal int64, layoutPick uint8) bool {
		rng := rand.New(rand.NewSource(seedVal))
		consumers := rng.Intn(6) + 1
		days := rng.Intn(3) + 1
		ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: seedVal})
		if err != nil {
			return false
		}
		dir, err := os.MkdirTemp("", "mdquick-*")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		var src *Source
		switch layoutPick % 4 {
		case 0:
			src, err = WriteUnpartitioned(dir+"/d", ds, FormatReadingPerLine)
		case 1:
			src, err = WriteUnpartitioned(dir+"/d", ds, FormatSeriesPerLine)
		case 2:
			src, err = WritePartitioned(dir+"/d", ds, FormatReadingPerLine)
		case 3:
			src, err = WriteGrouped(dir+"/d", ds, rng.Intn(consumers)+1)
		}
		if err != nil {
			return false
		}
		back, err := ReadDataset(src)
		if err != nil {
			return false
		}
		if len(back.Series) != len(ds.Series) {
			return false
		}
		for i := range ds.Series {
			if back.Series[i].ID != ds.Series[i].ID {
				return false
			}
			for j := range ds.Series[i].Readings {
				d := back.Series[i].Readings[j] - ds.Series[i].Readings[j]
				if d > 1e-4 || d < -1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
