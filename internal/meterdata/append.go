package meterdata

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// AppendToSource extends an on-disk source with new hourly data — the
// benchmark's future-work update workload ("adding a day's worth of new
// points to each time series", paper §3). The delta dataset must hold
// one series per existing household containing only the new readings,
// plus the matching new temperature values.
//
// Reading-per-line files support a cheap append (new rows at the end);
// series-per-line files must be rewritten, since each consumer is one
// line — the kind of asymmetry the paper anticipates for read-optimized
// layouts.
func AppendToSource(src *Source, delta *timeseries.Dataset, priorHours int) error {
	if err := appendTemperature(src.Dir, delta.Temperature); err != nil {
		return err
	}
	byID := make(map[timeseries.ID]*timeseries.Series, len(delta.Series))
	for _, s := range delta.Series {
		byID[s.ID] = s
	}
	switch src.Format {
	case FormatReadingPerLine:
		for _, rel := range src.DataFiles {
			path := filepath.Join(src.Dir, rel)
			ids, err := fileHouseholds(path, src.Format)
			if err != nil {
				return err
			}
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				return fmt.Errorf("meterdata: append: %w", err)
			}
			w := bufio.NewWriter(f)
			for _, id := range ids {
				s, ok := byID[id]
				if !ok {
					_ = f.Close()
					return fmt.Errorf("meterdata: delta is missing household %d", id)
				}
				for i, r := range s.Readings {
					fmt.Fprintf(w, "%d,%d,%s\n", id, priorHours+i, formatFloat(r))
				}
			}
			if err := w.Flush(); err != nil {
				_ = f.Close()
				return fmt.Errorf("meterdata: append flush: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("meterdata: append close: %w", err)
			}
		}
		return nil
	case FormatSeriesPerLine:
		// Rewrite: read everything, extend, write back.
		full, err := ReadDataset(src)
		if err != nil {
			return err
		}
		for _, s := range full.Series {
			d, ok := byID[s.ID]
			if !ok {
				return fmt.Errorf("meterdata: delta is missing household %d", s.ID)
			}
			s.Readings = append(s.Readings, d.Readings...)
		}
		if len(src.DataFiles) != 1 {
			return fmt.Errorf("meterdata: series-per-line append supports a single data file, have %d", len(src.DataFiles))
		}
		f, err := os.Create(filepath.Join(src.Dir, src.DataFiles[0]))
		if err != nil {
			return fmt.Errorf("meterdata: rewrite: %w", err)
		}
		w := bufio.NewWriterSize(f, 1<<20)
		for _, s := range full.Series {
			if err := writeSeries(w, s, FormatSeriesPerLine); err != nil {
				_ = f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			_ = f.Close()
			return fmt.Errorf("meterdata: rewrite flush: %w", err)
		}
		return f.Close()
	default:
		return fmt.Errorf("meterdata: unknown format %v", src.Format)
	}
}

// appendTemperature extends the temperature file.
func appendTemperature(dir string, delta *timeseries.Temperature) error {
	existing, err := ReadTemperature(dir)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, TemperatureFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("meterdata: append temperature: %w", err)
	}
	w := bufio.NewWriter(f)
	for i, v := range delta.Values {
		fmt.Fprintf(w, "%d,%s\n", len(existing.Values)+i, formatFloat(v))
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("meterdata: append temperature flush: %w", err)
	}
	return f.Close()
}

// fileHouseholds returns the distinct household IDs in one data file,
// in first-appearance order.
func fileHouseholds(path string, format Format) ([]timeseries.ID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("meterdata: %w", err)
	}
	defer f.Close()
	var ids []timeseries.ID
	seen := map[timeseries.ID]bool{}
	switch format {
	case FormatReadingPerLine:
		err = ScanReadings(f, func(r Reading) error {
			if !seen[r.ID] {
				seen[r.ID] = true
				ids = append(ids, r.ID)
			}
			return nil
		})
	case FormatSeriesPerLine:
		err = ScanSeries(f, func(s *timeseries.Series) error {
			if !seen[s.ID] {
				seen[s.ID] = true
				ids = append(ids, s.ID)
			}
			return nil
		})
	default:
		err = fmt.Errorf("meterdata: unknown format %v", format)
	}
	if err != nil {
		return nil, err
	}
	return ids, nil
}
