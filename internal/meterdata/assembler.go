package meterdata

import (
	"fmt"
	"sort"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Assembler accumulates individual readings into per-consumer series
// aligned to the temperature year: every assembled series has exactly
// tempLen readings, hours are bounds-checked, and missing hours stay
// zero. It centralizes the temperature-alignment step every extract
// path used to hand-roll (the file engine's index scan, the RDD
// group-by assembly, the MapReduce UDAF/UDTF plans).
type Assembler struct {
	tempLen int
	byID    map[timeseries.ID][]float64
}

// NewAssembler returns an assembler producing series of tempLen hours —
// the length of the temperature series the readings align to.
func NewAssembler(tempLen int) *Assembler {
	return &Assembler{tempLen: tempLen, byID: make(map[timeseries.ID][]float64)}
}

// Add records one reading, rejecting hours outside the temperature
// year.
func (a *Assembler) Add(r Reading) error {
	if r.Hour < 0 || r.Hour >= a.tempLen {
		return fmt.Errorf("meterdata: hour %d outside series of %d hours", r.Hour, a.tempLen)
	}
	readings := a.byID[r.ID]
	if readings == nil {
		readings = make([]float64, a.tempLen)
		a.byID[r.ID] = readings
	}
	readings[r.Hour] = r.Consumption
	return nil
}

// Len returns the number of distinct consumers added so far.
func (a *Assembler) Len() int { return len(a.byID) }

// Series returns the assembled series in ascending household-ID order.
func (a *Assembler) Series() []*timeseries.Series {
	ids := make([]timeseries.ID, 0, len(a.byID))
	for id := range a.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*timeseries.Series, 0, len(ids))
	for _, id := range ids {
		out = append(out, &timeseries.Series{ID: id, Readings: a.byID[id]})
	}
	return out
}
