package meterdata

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestParseFloatBytesMatchesStrconv pins the fast path bit-identical to
// strconv.ParseFloat: every accepted input must produce the exact same
// IEEE bit pattern, and every rejected input must also be rejected by
// strconv (the fast path only ever bails *to* strconv, so acceptance
// sets are identical by construction — this test guards the values).
func TestParseFloatBytesMatchesStrconv(t *testing.T) {
	check := func(in string) {
		t.Helper()
		got, gotErr := parseFloatBytes([]byte(in))
		want, wantErr := strconv.ParseFloat(in, 64)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("parseFloatBytes(%q) err = %v, strconv err = %v", in, gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("parseFloatBytes(%q) = %v (%#x), strconv = %v (%#x)",
				in, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}

	// Deterministic edge cases: fast-path shapes, fallback shapes, and
	// malformed rows.
	for _, in := range []string{
		"0", "1", "-1", "+1", "0.5", "-0.5", "3.141592653589793",
		"-0", "-0.0", "0.000", "00012.500", ".5", "5.", "-.25",
		"9007199254740991",     // 2^53-1: largest exact mantissa
		"9007199254740992",     // 2^53: forces the slow path
		"18446744073709551616", // > uint64: digit-count bail
		"0.0000000000000000000001",   // frac 22: last exact power
		"0.00000000000000000000001",  // frac 23: slow path
		"1e5", "1E5", "1e-3", "2.5e10", "inf", "-Inf", "NaN", "nan",
		"", "-", "+", ".", "-.", "1.2.3", "1,5", " 1", "1 ", "abc",
		"0x1p4", "1_000",
	} {
		check(in)
	}

	// Randomized round-trips through the same formatting the repo's
	// writers use (%g and fixed-point), plus raw decimal strings.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
		check(strconv.FormatFloat(f, 'g', -1, 64))
		check(strconv.FormatFloat(f, 'f', rng.Intn(8), 64))
		check(fmt.Sprintf("%d.%0*d", rng.Intn(1000), rng.Intn(6)+1, rng.Intn(100000)))
	}
}

func TestParseIntBytesMatchesStrconv(t *testing.T) {
	for _, in := range []string{
		"0", "7", "-7", "+7", "123456789012345678", "-123456789012345678",
		"9223372036854775807", "9223372036854775808", "-9223372036854775808",
		"", "-", "+", "1.5", "abc", "007",
	} {
		got, gotErr := parseIntBytes([]byte(in))
		want, wantErr := strconv.ParseInt(in, 10, 64)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("parseIntBytes(%q) err = %v, strconv err = %v", in, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("parseIntBytes(%q) = %d, strconv = %d", in, got, want)
		}
	}
}

// TestParseReadingBytesAllocs pins the reading-per-line hot path at
// zero allocations per row — the property the streaming extract layer
// depends on (one ScanReadings pass allocates nothing per reading).
func TestParseReadingBytesAllocs(t *testing.T) {
	line := []byte("1042,17,1.375")
	if n := testing.AllocsPerRun(200, func() {
		rd, err := parseReadingBytes(line)
		if err != nil || rd.Hour != 17 {
			t.Fatal("parse failed")
		}
	}); n != 0 {
		t.Fatalf("parseReadingBytes allocates %v per run, want 0", n)
	}
}

// TestParseSeriesBytesAllocs pins the series-per-line path at exactly
// two allocations per row: the Series value and its readings buffer —
// both retained by the caller. No field-slice, no string copies.
func TestParseSeriesBytesAllocs(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("31")
	for i := 0; i < 48; i++ {
		fmt.Fprintf(&sb, ",%d.%03d", i%9, i*37%1000)
	}
	line := []byte(sb.String())
	if n := testing.AllocsPerRun(200, func() {
		s, err := parseSeriesBytes(line)
		if err != nil || len(s.Readings) != 48 {
			t.Fatal("parse failed")
		}
	}); n != 2 {
		t.Fatalf("parseSeriesBytes allocates %v per run, want 2 (Series + readings)", n)
	}
}

// TestParseSeriesBytesFieldSemantics pins the strings.Split-equivalent
// field semantics the byte scanner must keep: a trailing comma is an
// empty final field (an error), not silently dropped.
func TestParseSeriesBytesFieldSemantics(t *testing.T) {
	if _, err := parseSeriesBytes([]byte("5,")); err == nil {
		t.Fatal("trailing empty field: want error, got nil")
	}
	if _, err := parseSeriesBytes([]byte("5,1.0,,2.0")); err == nil {
		t.Fatal("interior empty field: want error, got nil")
	}
	if _, err := parseSeriesBytes([]byte("5")); err == nil {
		t.Fatal("single field: want error, got nil")
	}
	s, err := parseSeriesBytes([]byte("5,1.5,2.25"))
	if err != nil {
		t.Fatalf("valid row: %v", err)
	}
	if s.ID != 5 || len(s.Readings) != 2 || s.Readings[0] != 1.5 || s.Readings[1] != 2.25 {
		t.Fatalf("valid row parsed wrong: %+v", s)
	}
}

// TestByteParsersAgreeWithStringAPI keeps the exported string wrappers
// and the byte parsers interchangeable.
func TestByteParsersAgreeWithStringAPI(t *testing.T) {
	rd, err := ParseReadingLine("9,3,0.125")
	if err != nil || rd.ID != 9 || rd.Hour != 3 || rd.Consumption != 0.125 {
		t.Fatalf("ParseReadingLine: %+v, %v", rd, err)
	}
	s, err := ParseSeriesLine("9,0.125,0.25")
	if err != nil || s.ID != 9 || len(s.Readings) != 2 {
		t.Fatalf("ParseSeriesLine: %+v, %v", s, err)
	}
}
