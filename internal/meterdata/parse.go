package meterdata

import (
	"bytes"
	"fmt"
	"strconv"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// This file is the decode hot path: byte-slice field scanning that
// replaces the per-line strings.Split / sc.Text() allocations in the
// readers. Every engine's cold extract funnels through these functions
// (directly, or via ScanReadings/ScanSeries), so the parallel
// extraction layer in internal/exec is fed by an allocation-free inner
// loop — parse_test.go pins the allocation counts with AllocsPerRun
// and the float fast path bit-identical to strconv.ParseFloat.

// pow10tab holds the powers of ten exactly representable as float64
// (10^22 is the largest). Dividing an exactly-represented integer
// mantissa by an exact power of ten is a single correctly-rounded IEEE
// operation, which is precisely what strconv's own exact fast path
// computes — so the results are bit-identical.
var pow10tab = [23]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloatBytes parses a decimal float from b without allocating.
// The fast path covers plain "[-]ddd[.ddd]" forms whose integer
// mantissa fits in 53 bits and whose fractional length is at most 22
// digits — every value the repo's writers emit. Anything else
// (exponents, huge mantissas, inf/NaN spellings) falls back to
// strconv.ParseFloat, so the result is always bit-identical to it.
func parseFloatBytes(b []byte) (float64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("meterdata: empty number")
	}
	i := 0
	neg := false
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
	}
	var mant uint64
	digits, frac := 0, 0
	sawDot, sawDigit := false, false
	for ; i < len(b); i++ {
		c := b[i]
		switch {
		case c >= '0' && c <= '9':
			if digits >= 19 { // next digit could overflow uint64
				return parseFloatSlow(b)
			}
			mant = mant*10 + uint64(c-'0')
			digits++
			sawDigit = true
			if sawDot {
				frac++
			}
		case c == '.' && !sawDot:
			sawDot = true
		default:
			return parseFloatSlow(b)
		}
	}
	if !sawDigit || mant>>53 != 0 || frac > 22 {
		return parseFloatSlow(b)
	}
	f := float64(mant) // exact: mant < 2^53
	if frac > 0 {
		f /= pow10tab[frac] // one correctly-rounded IEEE divide
	}
	if neg {
		f = -f
	}
	return f, nil
}

// parseFloatSlow is the allocating strconv fallback for inputs outside
// the exact fast path.
func parseFloatSlow(b []byte) (float64, error) {
	return strconv.ParseFloat(string(b), 64)
}

// parseIntBytes parses a decimal integer from b without allocating,
// falling back to strconv for anything but plain "[-]ddd" forms that
// fit comfortably in an int64.
func parseIntBytes(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("meterdata: empty integer")
	}
	i := 0
	neg := false
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
	}
	if i == len(b) || len(b)-i > 18 { // 18 digits always fit in int64
		return strconv.ParseInt(string(b), 10, 64)
	}
	var v int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return strconv.ParseInt(string(b), 10, 64)
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseReadingBytes parses one "household,hour,consumption" row from a
// byte slice without allocating.
func parseReadingBytes(line []byte) (Reading, error) {
	c1 := bytes.IndexByte(line, ',')
	if c1 < 0 {
		return Reading{}, fmt.Errorf("meterdata: row %q: missing fields", line)
	}
	rest := line[c1+1:]
	c2 := bytes.IndexByte(rest, ',')
	if c2 < 0 {
		return Reading{}, fmt.Errorf("meterdata: row %q: missing consumption", line)
	}
	id, err := parseIntBytes(line[:c1])
	if err != nil {
		return Reading{}, fmt.Errorf("meterdata: row %q: bad household: %w", line, err)
	}
	hour, err := parseIntBytes(rest[:c2])
	if err != nil {
		return Reading{}, fmt.Errorf("meterdata: row %q: bad hour: %w", line, err)
	}
	v, err := parseFloatBytes(rest[c2+1:])
	if err != nil {
		return Reading{}, fmt.Errorf("meterdata: row %q: bad consumption: %w", line, err)
	}
	return Reading{ID: timeseries.ID(id), Hour: int(hour), Consumption: v}, nil
}

// parseSeriesBytes parses one "household,r0,r1,..." row by scanning
// comma positions in place — no field-slice allocation. The only
// allocations are the returned Series and its readings buffer, which
// the caller retains.
func parseSeriesBytes(line []byte) (*timeseries.Series, error) {
	c1 := bytes.IndexByte(line, ',')
	if c1 < 0 {
		return nil, fmt.Errorf("meterdata: series row has 1 field")
	}
	id, err := parseIntBytes(line[:c1])
	if err != nil {
		return nil, fmt.Errorf("meterdata: series row: bad household: %w", err)
	}
	rest := line[c1+1:]
	readings := make([]float64, 0, bytes.Count(rest, commaSep)+1)
	for {
		c := bytes.IndexByte(rest, ',')
		field := rest
		if c >= 0 {
			field, rest = rest[:c], rest[c+1:]
		}
		v, err := parseFloatBytes(field)
		if err != nil {
			return nil, fmt.Errorf("meterdata: series %d reading %d: %w", id, len(readings), err)
		}
		readings = append(readings, v)
		if c < 0 {
			break
		}
	}
	return &timeseries.Series{ID: timeseries.ID(id), Readings: readings}, nil
}

var commaSep = []byte{','}
