package meterdata

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Reading is one parsed reading-per-line row.
type Reading struct {
	ID          timeseries.ID
	Hour        int
	Consumption float64
}

// ParseReadingLine parses one "household,hour,consumption" row.
func ParseReadingLine(line string) (Reading, error) {
	return parseReadingBytes([]byte(line))
}

// ParseSeriesLine parses one "household,r0,r1,..." row.
func ParseSeriesLine(line string) (*timeseries.Series, error) {
	return parseSeriesBytes([]byte(line))
}

// ScanReadings streams reading-per-line rows from r, invoking fn for
// each. The inner loop parses the scanner's byte slice in place (see
// parse.go), so a full file scan allocates nothing per row.
func ScanReadings(r io.Reader, fn func(Reading) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rd, err := parseReadingBytes(line)
		if err != nil {
			return err
		}
		if err := fn(rd); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ScanSeries streams series-per-line rows from r, invoking fn for
// each. Per row it allocates only the Series and its readings buffer —
// the two values the callback retains.
func ScanSeries(r io.Reader, fn func(*timeseries.Series) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		s, err := parseSeriesBytes(line)
		if err != nil {
			return err
		}
		if err := fn(s); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadDataset loads an entire Source into memory as a Dataset, with
// series ordered by ascending household ID.
func ReadDataset(src *Source) (*timeseries.Dataset, error) {
	temp, err := ReadTemperature(src.Dir)
	if err != nil {
		return nil, err
	}
	byID := make(map[timeseries.ID][]float64)
	for _, path := range src.Paths() {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("meterdata: %w", err)
		}
		switch src.Format {
		case FormatReadingPerLine:
			err = ScanReadings(f, func(rd Reading) error {
				readings := byID[rd.ID]
				for len(readings) <= rd.Hour {
					readings = append(readings, 0)
				}
				readings[rd.Hour] = rd.Consumption
				byID[rd.ID] = readings
				return nil
			})
		case FormatSeriesPerLine:
			err = ScanSeries(f, func(s *timeseries.Series) error {
				byID[s.ID] = s.Readings
				return nil
			})
		default:
			err = fmt.Errorf("meterdata: unknown format %v", src.Format)
		}
		_ = f.Close()
		if err != nil {
			return nil, fmt.Errorf("meterdata: read %s: %w", path, err)
		}
	}
	if len(byID) == 0 {
		return nil, fmt.Errorf("meterdata: source %s contains no series", src.Dir)
	}
	ids := make([]timeseries.ID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	series := make([]*timeseries.Series, len(ids))
	for i, id := range ids {
		series[i] = &timeseries.Series{ID: id, Readings: byID[id]}
	}
	return &timeseries.Dataset{Series: series, Temperature: temp}, nil
}

// ReadSeriesFile reads one partitioned consumer file (or one grouped
// file) and returns the series it contains, ordered by household ID.
func ReadSeriesFile(path string, format Format) ([]*timeseries.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("meterdata: %w", err)
	}
	defer f.Close()
	byID := make(map[timeseries.ID][]float64)
	switch format {
	case FormatReadingPerLine:
		err = ScanReadings(f, func(rd Reading) error {
			readings := byID[rd.ID]
			for len(readings) <= rd.Hour {
				readings = append(readings, 0)
			}
			readings[rd.Hour] = rd.Consumption
			byID[rd.ID] = readings
			return nil
		})
	case FormatSeriesPerLine:
		err = ScanSeries(f, func(s *timeseries.Series) error {
			byID[s.ID] = s.Readings
			return nil
		})
	default:
		err = fmt.Errorf("meterdata: unknown format %v", format)
	}
	if err != nil {
		return nil, fmt.Errorf("meterdata: read %s: %w", path, err)
	}
	ids := make([]timeseries.ID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*timeseries.Series, len(ids))
	for i, id := range ids {
		out[i] = &timeseries.Series{ID: id, Readings: byID[id]}
	}
	return out, nil
}
