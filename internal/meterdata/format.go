// Package meterdata defines the on-disk representations of smart meter
// data used throughout the benchmark and implements readers and writers
// for each.
//
// The paper evaluates three text formats on the cluster (§5.4.2) plus a
// partitioned (file-per-consumer) layout on the single server (§5.3.1):
//
//   - FormatReadingPerLine ("first data format"): one smart meter reading
//     per line — household, hour, consumption. The most flexible layout,
//     but reconstructing a household's series requires grouping (a
//     reduce/shuffle step on a cluster).
//   - FormatSeriesPerLine ("second data format"): one household per line,
//     all its readings inline. Grouping is free, so map-only jobs
//     suffice.
//   - grouped files ("third data format"): many files, one reading per
//     line, with each household fully contained in one file.
//   - partitioned: one file per consumer (the layout Matlab prefers).
//
// Temperature is stored once per directory in temperature.csv, since all
// consumers in the paper's data share one city's weather.
package meterdata

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Format identifies how consumption rows are laid out in a data file.
type Format int

const (
	// FormatReadingPerLine stores "household,hour,consumption" rows.
	FormatReadingPerLine Format = iota
	// FormatSeriesPerLine stores "household,r0,r1,...,rN" rows.
	FormatSeriesPerLine
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatReadingPerLine:
		return "reading-per-line"
	case FormatSeriesPerLine:
		return "series-per-line"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// TemperatureFile is the per-directory temperature file name.
const TemperatureFile = "temperature.csv"

// DataFile is the single-file (unpartitioned) data file name.
const DataFile = "data.csv"

// Source describes a data directory an engine can load from.
type Source struct {
	// Dir is the directory containing the files.
	Dir string
	// Format is the row layout of the consumption files.
	Format Format
	// Partitioned is true when each consumer lives in its own file
	// (consumer_<id>.csv); false when all rows live in DataFile or in
	// grouped files.
	Partitioned bool
	// DataFiles lists the consumption files, relative to Dir.
	DataFiles []string
}

// TemperaturePath returns the absolute path of the temperature file.
func (s *Source) TemperaturePath() string { return filepath.Join(s.Dir, TemperatureFile) }

// Paths returns the absolute paths of all consumption files.
func (s *Source) Paths() []string {
	out := make([]string, len(s.DataFiles))
	for i, f := range s.DataFiles {
		out[i] = filepath.Join(s.Dir, f)
	}
	return out
}

// TotalBytes returns the summed size of all consumption files plus the
// temperature file, for throughput reporting.
func (s *Source) TotalBytes() (int64, error) {
	var total int64
	files := append(s.Paths(), s.TemperaturePath())
	for _, p := range files {
		fi, err := os.Stat(p)
		if err != nil {
			return 0, fmt.Errorf("meterdata: stat %s: %w", p, err)
		}
		total += fi.Size()
	}
	return total, nil
}

// consumerFileName returns the partitioned file name for one household.
func consumerFileName(id timeseries.ID) string {
	return fmt.Sprintf("consumer_%d.csv", id)
}

// groupFileName returns the grouped-layout file name.
func groupFileName(i int) string { return fmt.Sprintf("group_%05d.csv", i) }

// WriteTemperature writes the shared temperature series as
// "hour,temperature" rows.
func WriteTemperature(dir string, temp *timeseries.Temperature) error {
	f, err := os.Create(filepath.Join(dir, TemperatureFile))
	if err != nil {
		return fmt.Errorf("meterdata: %w", err)
	}
	w := bufio.NewWriter(f)
	for i, v := range temp.Values {
		fmt.Fprintf(w, "%d,%s\n", i, formatFloat(v))
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("meterdata: flush temperature: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("meterdata: close temperature: %w", err)
	}
	return nil
}

// ReadTemperature reads a temperature file written by WriteTemperature.
func ReadTemperature(dir string) (*timeseries.Temperature, error) {
	path := filepath.Join(dir, TemperatureFile)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("meterdata: %w", err)
	}
	defer f.Close()
	var values []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		comma := strings.IndexByte(text, ',')
		if comma < 0 {
			return nil, fmt.Errorf("meterdata: %s:%d: missing comma", path, line)
		}
		v, err := strconv.ParseFloat(text[comma+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("meterdata: %s:%d: %w", path, line, err)
		}
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("meterdata: scan %s: %w", path, err)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("meterdata: %s is empty", path)
	}
	return &timeseries.Temperature{Values: values}, nil
}

// WriteUnpartitioned writes the whole dataset into one DataFile in the
// given format plus the temperature file, and returns the Source.
func WriteUnpartitioned(dir string, ds *timeseries.Dataset, format Format) (*Source, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("meterdata: %w", err)
	}
	if err := WriteTemperature(dir, ds.Temperature); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, DataFile))
	if err != nil {
		return nil, fmt.Errorf("meterdata: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	for _, s := range ds.Series {
		if err := writeSeries(w, s, format); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("meterdata: flush: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("meterdata: close: %w", err)
	}
	return &Source{Dir: dir, Format: format, DataFiles: []string{DataFile}}, nil
}

// WritePartitioned writes one file per consumer (reading-per-line rows
// without the household column would lose the ID on re-read, so rows keep
// the full format) plus the temperature file.
func WritePartitioned(dir string, ds *timeseries.Dataset, format Format) (*Source, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("meterdata: %w", err)
	}
	if err := WriteTemperature(dir, ds.Temperature); err != nil {
		return nil, err
	}
	files := make([]string, 0, len(ds.Series))
	for _, s := range ds.Series {
		name := consumerFileName(s.ID)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("meterdata: %w", err)
		}
		w := bufio.NewWriterSize(f, 1<<18)
		if err := writeSeries(w, s, format); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := w.Flush(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("meterdata: flush %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("meterdata: close %s: %w", name, err)
		}
		files = append(files, name)
	}
	return &Source{Dir: dir, Format: format, Partitioned: true, DataFiles: files}, nil
}

// WriteGrouped writes the paper's third data format: numFiles files, one
// reading per line, each household fully contained in a single file.
func WriteGrouped(dir string, ds *timeseries.Dataset, numFiles int) (*Source, error) {
	if numFiles <= 0 {
		return nil, fmt.Errorf("meterdata: numFiles must be positive, got %d", numFiles)
	}
	if numFiles > len(ds.Series) {
		numFiles = len(ds.Series)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("meterdata: %w", err)
	}
	if err := WriteTemperature(dir, ds.Temperature); err != nil {
		return nil, err
	}
	files := make([]string, 0, numFiles)
	per := (len(ds.Series) + numFiles - 1) / numFiles
	for g := 0; g < numFiles; g++ {
		lo := g * per
		hi := lo + per
		if hi > len(ds.Series) {
			hi = len(ds.Series)
		}
		if lo >= hi {
			break
		}
		name := groupFileName(g)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("meterdata: %w", err)
		}
		w := bufio.NewWriterSize(f, 1<<18)
		for _, s := range ds.Series[lo:hi] {
			if err := writeSeries(w, s, FormatReadingPerLine); err != nil {
				_ = f.Close()
				return nil, err
			}
		}
		if err := w.Flush(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("meterdata: flush %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("meterdata: close %s: %w", name, err)
		}
		files = append(files, name)
	}
	return &Source{Dir: dir, Format: FormatReadingPerLine, DataFiles: files}, nil
}

func writeSeries(w *bufio.Writer, s *timeseries.Series, format Format) error {
	switch format {
	case FormatReadingPerLine:
		for h, r := range s.Readings {
			if _, err := fmt.Fprintf(w, "%d,%d,%s\n", s.ID, h, formatFloat(r)); err != nil {
				return fmt.Errorf("meterdata: write consumer %d: %w", s.ID, err)
			}
		}
	case FormatSeriesPerLine:
		var sb strings.Builder
		sb.Grow(len(s.Readings)*7 + 16)
		sb.WriteString(strconv.FormatInt(int64(s.ID), 10))
		for _, r := range s.Readings {
			sb.WriteByte(',')
			sb.WriteString(formatFloat(r))
		}
		sb.WriteByte('\n')
		if _, err := w.WriteString(sb.String()); err != nil {
			return fmt.Errorf("meterdata: write consumer %d: %w", s.ID, err)
		}
	default:
		return fmt.Errorf("meterdata: unknown format %v", format)
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// DiscoverSource inspects a directory previously written by one of the
// writers and reconstructs its Source description.
func DiscoverSource(dir string) (*Source, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("meterdata: %w", err)
	}
	src := &Source{Dir: dir}
	sawTemp := false
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == TemperatureFile:
			sawTemp = true
		case name == DataFile || strings.HasPrefix(name, "group_"),
			strings.HasPrefix(name, "consumer_"):
			src.DataFiles = append(src.DataFiles, name)
			if strings.HasPrefix(name, "consumer_") {
				src.Partitioned = true
			}
		}
	}
	if !sawTemp {
		return nil, fmt.Errorf("meterdata: %s has no %s", dir, TemperatureFile)
	}
	if len(src.DataFiles) == 0 {
		return nil, fmt.Errorf("meterdata: %s has no data files", dir)
	}
	sort.Strings(src.DataFiles)
	// Sniff the format from the first data line of the first file.
	f, err := os.Open(filepath.Join(dir, src.DataFiles[0]))
	if err != nil {
		return nil, fmt.Errorf("meterdata: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if sc.Scan() {
		if strings.Count(sc.Text(), ",") > 2 {
			src.Format = FormatSeriesPerLine
		} else {
			src.Format = FormatReadingPerLine
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("meterdata: sniff format: %w", err)
	}
	return src, nil
}
