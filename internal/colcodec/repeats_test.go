package colcodec

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// payloadMode returns the mode byte a payload from AppendValues chose.
func payloadMode(t *testing.T, payload []byte) byte {
	t.Helper()
	cnt, n := binary.Uvarint(payload)
	if n <= 0 || cnt == 0 || n >= len(payload) {
		t.Fatalf("malformed payload header (count %d, varint %d bytes)", cnt, n)
	}
	return payload[n]
}

func TestRepeatModesRoundTrip(t *testing.T) {
	nan := math.NaN()
	hostileNaN := math.Float64frombits(0x7ff0123456789abc)
	level := 1.2345678901234567 // not decimal-representable: XOR territory
	constant := make([]float64, 1008)
	for i := range constant {
		constant[i] = level
	}
	alternating := make([]float64, 1008)
	for i := range alternating {
		alternating[i] = level + float64(i%2)
	}
	runs := make([]float64, 1008)
	for i := range runs {
		runs[i] = []float64{nan, hostileNaN, math.Inf(1), math.Copysign(0, -1), 5e-324}[i/202%5]
	}
	dicty := make([]float64, 2016)
	for i := range dicty {
		dicty[i] = float64(i%48) + 0.1234567890123456
	}
	cases := map[string]struct {
		vals []float64
		mode byte
	}{
		// A pure constant is one dictionary entry with zero index bits:
		// 10 bytes, one under its RLE form.
		"constant":    {constant, modeDict},
		"alternating": {alternating, modeDict},
		"hostile-run": {runs, modeRLE},
		"dict48":      {dicty, modeDict},
	}
	for name, tc := range cases {
		payload := roundTripValues(t, tc.vals)
		if m := payloadMode(t, payload); m != tc.mode {
			t.Errorf("%s: chose mode %d, want %d", name, m, tc.mode)
		}
		t.Logf("%s: %d values -> %d bytes", name, len(tc.vals), len(payload))
	}
}

// TestRepeatModeBeatsXOR pins the acceptance criterion: near-constant
// series must encode smaller under the repeat modes than under the XOR
// fallback they previously landed in.
func TestRepeatModeBeatsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vals := make([]float64, 1008)
	level := rng.NormFloat64() // non-decimal: fixed mode can't take it
	for i := range vals {
		vals[i] = level
		if i%100 == 50 {
			vals[i] = level + rng.NormFloat64() // occasional spike
		}
	}
	var enc Encoder
	chosen := enc.AppendValues(nil, vals)
	xor := appendXOR(binary.AppendUvarint(nil, uint64(len(vals))), vals)
	if len(chosen) >= len(xor) {
		t.Fatalf("repeat mode %d bytes, XOR %d bytes: repeat mode must win on near-constant series",
			len(chosen), len(xor))
	}
	if m := payloadMode(t, chosen); m != modeRLE && m != modeDict {
		t.Fatalf("near-constant series chose mode %d, want a repeat mode", m)
	}
	t.Logf("near-constant 1008 values: repeat %d bytes vs XOR %d bytes", len(chosen), len(xor))
}

// TestRepeatModeStaysOut pins the heuristic's other side: dense
// decimal and Gaussian blocks keep their historical modes.
func TestRepeatModeStaysOut(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	quant := make([]float64, 1008)
	gauss := make([]float64, 1008)
	for i := range quant {
		quant[i] = math.Round(math.Abs(rng.NormFloat64())*1000) / 1000
		gauss[i] = rng.NormFloat64()
	}
	var enc Encoder
	if m := payloadMode(t, enc.AppendValues(nil, quant)); m != modeFixed {
		t.Errorf("quantized Gaussians chose mode %d, want fixed", m)
	}
	if m := payloadMode(t, enc.AppendValues(nil, gauss)); m != modeXOR {
		t.Errorf("raw Gaussians chose mode %d, want XOR", m)
	}
}

func TestRepeatModesZeroAllocDecode(t *testing.T) {
	runs := make([]float64, 1024)
	alternating := make([]float64, 1024)
	for i := range runs {
		runs[i] = 1.2345678901234567 + float64(i/128)
		alternating[i] = 1.2345678901234567 + float64(i%2)
	}
	var enc Encoder
	payloads := map[string][]byte{
		"rle":  enc.AppendValues(nil, runs),
		"dict": enc.AppendValues(nil, alternating),
	}
	if m := payloadMode(t, payloads["rle"]); m != modeRLE {
		t.Fatalf("rle fixture chose mode %d", m)
	}
	if m := payloadMode(t, payloads["dict"]); m != modeDict {
		t.Fatalf("dict fixture chose mode %d", m)
	}
	dst := make([]float64, 1024)
	for name, payload := range payloads {
		allocs := testing.AllocsPerRun(100, func() {
			var err error
			dst, _, err = DecodeValues(payload, dst)
			if err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s decode: %.1f allocs/op, want 0", name, allocs)
		}
	}
}

func TestRepeatModesTruncated(t *testing.T) {
	constant := make([]float64, 300)
	alternating := make([]float64, 300)
	for i := range constant {
		constant[i] = 1.2345678901234567
		alternating[i] = 1.2345678901234567 + float64(i%3)
	}
	var enc Encoder
	for name, vals := range map[string][]float64{"rle": constant, "dict": alternating} {
		payload := enc.AppendValues(nil, vals)
		for cut := 0; cut < len(payload); cut++ {
			if _, _, err := DecodeValues(payload[:cut], nil); err == nil {
				t.Fatalf("%s: truncation at %d/%d bytes decoded without error", name, cut, len(payload))
			}
		}
	}
}

func TestRepeatModeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(2200)
		vals := make([]float64, n)
		levels := make([]float64, 1+rng.Intn(80))
		for i := range levels {
			levels[i] = rng.NormFloat64()
		}
		i := 0
		for i < n {
			run := 1 + rng.Intn(40)
			if run > n-i {
				run = n - i
			}
			v := levels[rng.Intn(len(levels))]
			for j := 0; j < run; j++ {
				vals[i] = v
				i++
			}
		}
		roundTripValues(t, vals)
	}
}
