package colcodec

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFromBytes reinterprets a fuzz byte string as a float64 slice
// (little-endian, trailing partial word dropped) so the fuzzer mutates
// raw bit patterns — NaN payloads, denormals, infinities included.
func floatsFromBytes(raw []byte) []float64 {
	vals := make([]float64, len(raw)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return vals
}

func floatsToBytes(vals []float64) []byte {
	raw := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	return raw
}

// fuzzSeeds mirrors the adversarial cases of the deterministic tests
// so the fuzzer starts from every known-hostile corner: NaN payloads,
// signed zeros, denormals, extremes, repeat-mode and fixed-mode bait.
func fuzzSeeds() [][]float64 {
	nan := math.NaN()
	payloadNaN := math.Float64frombits(0x7ff8deadbeef0001)
	constant := make([]float64, 300)
	for i := range constant {
		constant[i] = 1.2345678901234567
	}
	alternating := make([]float64, 130)
	for i := range alternating {
		alternating[i] = float64(i % 2)
	}
	return [][]float64{
		{},
		{42.125},
		{nan},
		{1.5, nan, math.Inf(1), math.Inf(-1), 0, payloadNaN, -2.25},
		{0, math.Copysign(0, -1), 0, math.Copysign(0, -1)},
		{5e-324, 1e-310, -5e-324, math.SmallestNonzeroFloat64, 2.2250738585072009e-308},
		{math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64},
		{1.234, 0.001, 17.5, 0, 123.456, 0.999},
		constant,
		alternating,
	}
}

// FuzzValuesRoundTrip feeds arbitrary bit patterns through every
// encode mode the heuristic picks and requires bit-identical decode
// with exact payload accounting — the codec's core contract.
func FuzzValuesRoundTrip(f *testing.F) {
	for _, vals := range fuzzSeeds() {
		f.Add(floatsToBytes(vals))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := floatsFromBytes(raw)
		if len(vals) > 1<<16 {
			t.Skip()
		}
		var enc Encoder
		payload := enc.AppendValues(nil, vals)
		got, used, err := DecodeValues(payload, nil)
		if err != nil {
			t.Fatalf("DecodeValues: %v", err)
		}
		if used != len(payload) {
			t.Fatalf("consumed %d of %d payload bytes", used, len(payload))
		}
		if len(got) != len(vals) {
			t.Fatalf("decoded %d values, want %d", len(got), len(vals))
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("value %d: bits %016x want %016x",
					i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
		}
	})
}

// FuzzDecodeValues throws arbitrary byte strings at the decoder: it
// must reject or decode within bounds, never panic or over-consume.
// Valid payloads seeded from the round-trip corpus keep the fuzzer
// exploring deep decode paths rather than bouncing off the header.
func FuzzDecodeValues(f *testing.F) {
	var enc Encoder
	for _, vals := range fuzzSeeds() {
		payload := enc.AppendValues(nil, vals)
		f.Add(payload)
		if len(payload) > 1 {
			f.Add(payload[:len(payload)/2])
		}
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		// A hostile header may legally promise a huge count (RLE makes
		// millions of rows from a few bytes); cap the allocation, not
		// the logic.
		if cnt, n := binary.Uvarint(payload); n > 0 && cnt > 1<<20 {
			t.Skip()
		}
		vals, used, err := DecodeValues(payload, nil)
		if err != nil {
			return
		}
		if used > len(payload) {
			t.Fatalf("consumed %d of %d payload bytes", used, len(payload))
		}
		// What decoded must re-encode and decode back bit-identically:
		// the decoder may accept non-canonical payloads, but never ones
		// that alias to different values.
		var re Encoder
		payload2 := re.AppendValues(nil, vals)
		got, _, err := DecodeValues(payload2, nil)
		if err != nil {
			t.Fatalf("re-encode of decoded payload failed: %v", err)
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("re-encode value %d: bits %016x want %016x",
					i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
		}
	})
}
