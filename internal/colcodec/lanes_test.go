package colcodec

import (
	"math"
	"math/rand"
	"testing"
)

// refLanes is the oracle: the same reduction computed independently,
// first-assignment-then-add in row order.
func refLanes(start int, vals []float64) (sums [24]float64, counts [24]int32) {
	var seen [24]bool
	for i, v := range vals {
		h := (start + i) % 24
		if !seen[h] {
			sums[h] = v
			seen[h] = true
		} else {
			sums[h] += v
		}
		counts[h]++
	}
	return sums, counts
}

func TestSummarizeHoursMatchesDecodedReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(200)
		start := rng.Intn(24 * 400)
		vals := make([]float64, n)
		for i := range vals {
			switch trial % 3 {
			case 0:
				vals[i] = rng.NormFloat64()
			case 1:
				vals[i] = math.Round(math.Abs(rng.NormFloat64())*1000) / 1000
			case 2:
				vals[i] = []float64{0, math.Copysign(0, -1), 5e-324, math.Inf(1)}[rng.Intn(4)]
			}
		}
		var ls LaneSummary
		if !SummarizeHours(start, vals, &ls) {
			t.Fatalf("trial %d: NaN-free block rejected", trial)
		}
		sums, counts := refLanes(start, vals)
		total := int32(0)
		for h := 0; h < 24; h++ {
			if math.Float64bits(ls.Sums[h]) != math.Float64bits(sums[h]) {
				t.Fatalf("trial %d lane %d: sum bits %016x want %016x",
					trial, h, math.Float64bits(ls.Sums[h]), math.Float64bits(sums[h]))
			}
			if ls.Counts[h] != counts[h] {
				t.Fatalf("trial %d lane %d: count %d want %d", trial, h, ls.Counts[h], counts[h])
			}
			total += ls.Counts[h]
		}
		if total != int32(n) {
			t.Fatalf("trial %d: lane counts sum to %d, want %d", trial, total, n)
		}
	}
}

func TestSummarizeHoursSingleValueLanesExact(t *testing.T) {
	// Blocks of <= 24 rows pin at most one value per lane, so the lane
	// sum must be that value's exact bit pattern — the property the PAR
	// fast path relies on to reconstruct short blocks.
	vals := []float64{math.Copysign(0, -1), 5e-324, -0.0, 1.5, math.Inf(-1)}
	var ls LaneSummary
	if !SummarizeHours(7, vals, &ls) {
		t.Fatal("rejected")
	}
	for i, v := range vals {
		h := (7 + i) % 24
		if math.Float64bits(ls.Sums[h]) != math.Float64bits(v) {
			t.Fatalf("lane %d: got bits %016x want %016x", h,
				math.Float64bits(ls.Sums[h]), math.Float64bits(v))
		}
		if ls.Counts[h] != 1 {
			t.Fatalf("lane %d: count %d want 1", h, ls.Counts[h])
		}
	}
}

func TestSummarizeHoursFlags(t *testing.T) {
	constant := make([]float64, 48)
	for i := range constant {
		constant[i] = 2.5
	}
	var ls LaneSummary
	if !SummarizeHours(0, constant, &ls) || !ls.Constant || !ls.Periodic {
		t.Fatalf("constant aligned block: Constant=%v Periodic=%v", ls.Constant, ls.Periodic)
	}

	// A -0/+0 mix is NOT bit-constant even though the values compare ==.
	zeros := make([]float64, 48)
	zeros[13] = math.Copysign(0, -1)
	if !SummarizeHours(0, zeros, &ls) || ls.Constant {
		t.Fatal("-0/+0 mix must not report Constant")
	}

	periodic := make([]float64, 24 * 5)
	for i := range periodic {
		periodic[i] = float64(i%24) + 0.25
	}
	if !SummarizeHours(24, periodic, &ls) || ls.Constant || !ls.Periodic {
		t.Fatalf("tiled block: Constant=%v Periodic=%v", ls.Constant, ls.Periodic)
	}
	for h := 0; h < 24; h++ {
		if math.Float64bits(ls.Pattern[h]) != math.Float64bits(float64(h)+0.25) {
			t.Fatalf("pattern[%d] = %v", h, ls.Pattern[h])
		}
	}

	// Misaligned start or ragged count kills periodicity even for
	// otherwise tiled data.
	if !SummarizeHours(1, periodic, &ls) || ls.Periodic {
		t.Fatal("misaligned block must not report Periodic")
	}
	if !SummarizeHours(0, periodic[:100], &ls) || ls.Periodic {
		t.Fatal("ragged block must not report Periodic")
	}

	// NaN anywhere disables lanes entirely.
	withNaN := make([]float64, 48)
	withNaN[30] = math.NaN()
	if SummarizeHours(0, withNaN, &ls) {
		t.Fatal("NaN-bearing block must be rejected")
	}
	if SummarizeHours(0, nil, &ls) {
		t.Fatal("empty block must be rejected")
	}
}
