package colcodec

import (
	"math"
	"math/rand"
	"testing"
)

// roundTripValues encodes vals, decodes the payload, and requires
// bit-identical output plus exact payload-length accounting.
func roundTripValues(t *testing.T, vals []float64) []byte {
	t.Helper()
	var enc Encoder
	payload := enc.AppendValues(nil, vals)
	got, used, err := DecodeValues(payload, nil)
	if err != nil {
		t.Fatalf("DecodeValues: %v", err)
	}
	if used != len(payload) {
		t.Fatalf("consumed %d of %d payload bytes", used, len(payload))
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: got bits %016x want %016x (%v vs %v)",
				i, math.Float64bits(got[i]), math.Float64bits(vals[i]), got[i], vals[i])
		}
	}
	return payload
}

func roundTripTimestamps(t *testing.T, ts []int64) []byte {
	t.Helper()
	payload := AppendTimestamps(nil, ts)
	got, used, err := DecodeTimestamps(payload, nil)
	if err != nil {
		t.Fatalf("DecodeTimestamps: %v", err)
	}
	if used != len(payload) {
		t.Fatalf("consumed %d of %d payload bytes", used, len(payload))
	}
	if len(got) != len(ts) {
		t.Fatalf("decoded %d timestamps, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Fatalf("timestamp %d: got %d want %d", i, got[i], ts[i])
		}
	}
	return payload
}

func TestValuesRoundTripAdversarial(t *testing.T) {
	nan := math.NaN()
	payloadNaN := math.Float64frombits(0x7ff8deadbeef0001) // non-canonical NaN payload
	cases := map[string][]float64{
		"empty":          {},
		"single":         {42.125},
		"single-nan":     {nan},
		"constant":       {3.5, 3.5, 3.5, 3.5, 3.5, 3.5, 3.5},
		"constant-zero":  make([]float64, 300),
		"nan-inf-mix":    {1.5, nan, math.Inf(1), math.Inf(-1), 0, payloadNaN, -2.25},
		"all-nan":        {nan, nan, nan},
		"negative-zero":  {0, math.Copysign(0, -1), 0, math.Copysign(0, -1)},
		"denormals":      {5e-324, 1e-310, -5e-324, math.SmallestNonzeroFloat64, 2.2250738585072009e-308},
		"extremes":       {math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64},
		"decimal-wh":     {1.234, 0.001, 17.5, 0, 123.456, 0.999},
		"large-fixed":    {100000.125, 99999.875, 100001},
		"single-decimal": {0.7},
	}
	for name, vals := range cases {
		payload := roundTripValues(t, vals)
		t.Logf("%s: %d values -> %d bytes", name, len(vals), len(payload))
	}
}

func TestValuesRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(3000)
		vals := make([]float64, n)
		mode := trial % 4
		for i := range vals {
			switch mode {
			case 0: // quantized Wh readings: the fixed-point sweet spot
				vals[i] = math.Round(math.Abs(rng.NormFloat64())*1000) / 1000
			case 1: // raw Gaussians: forces XOR mode
				vals[i] = rng.NormFloat64()
			case 2: // mixed magnitudes, still decimal
				vals[i] = math.Round(rng.Float64()*math.Pow(10, float64(rng.Intn(6)))*100) / 100
			case 3: // hostile bit patterns
				vals[i] = math.Float64frombits(rng.Uint64())
			}
		}
		roundTripValues(t, vals)
	}
}

func TestTimestampsRoundTrip(t *testing.T) {
	regular := make([]int64, 1024)
	for i := range regular {
		regular[i] = 1700000000 + int64(i)*3600
	}
	irregular := []int64{0, 3600, 7200, 7200 + 86400, 7200 + 86400 + 1, 7200 + 2*86400, -50, -49}
	cases := map[string][]int64{
		"empty":     {},
		"single":    {1700000000},
		"pair":      {10, 20},
		"regular":   regular,
		"irregular": irregular,
		"negative":  {-1000, -400, 0, 12},
	}
	for name, ts := range cases {
		payload := roundTripTimestamps(t, ts)
		t.Logf("%s: %d timestamps -> %d bytes", name, len(ts), len(payload))
	}
	// A regular series must collapse to a handful of bytes: that is the
	// whole point of delta-of-delta + RLE.
	if p := AppendTimestamps(nil, regular); len(p) > 16 {
		t.Fatalf("regular 1024-entry series encoded to %d bytes, want <= 16", len(p))
	}
}

func TestTimestampsRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(2000)
		ts := make([]int64, n)
		var cur int64
		for i := range ts {
			if rng.Intn(10) == 0 {
				cur += rng.Int63n(1 << 30) // occasional large gap
			} else {
				cur += 3600
			}
			ts[i] = cur
		}
		roundTripTimestamps(t, ts)
	}
}

func TestCompressionRatioOnQuantizedGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = math.Round((1+0.1*rng.NormFloat64())*1000) / 1000
	}
	payload := roundTripValues(t, vals)
	raw := 8 * len(vals)
	if ratio := float64(raw) / float64(len(payload)); ratio < 4 {
		t.Fatalf("compression ratio %.2f on quantized Gaussian block, want >= 4 (payload %d bytes)", ratio, len(payload))
	}
}

func TestSummarizeMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	s := Summarize(vals)
	if s.Count != len(vals) || s.NaNs != 0 {
		t.Fatalf("Count=%d NaNs=%d", s.Count, s.NaNs)
	}
	min, max, sum := vals[0], vals[0], 0.0
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	if math.Float64bits(s.Min) != math.Float64bits(min) || math.Float64bits(s.Max) != math.Float64bits(max) {
		t.Fatalf("Min/Max %v/%v want %v/%v", s.Min, s.Max, min, max)
	}
	if math.Float64bits(s.Sum) != math.Float64bits(sum) {
		t.Fatalf("Sum %v want %v (block-order accumulation must match scan)", s.Sum, sum)
	}

	nan := math.NaN()
	withNaN := Summarize([]float64{nan, 2, nan, -1})
	if withNaN.NaNs != 2 || withNaN.Min != -1 || withNaN.Max != 2 || withNaN.Sum != 1 {
		t.Fatalf("NaN summary: %+v", withNaN)
	}
	allNaN := Summarize([]float64{nan, nan})
	if !math.IsNaN(allNaN.Min) || !math.IsNaN(allNaN.Max) || allNaN.NaNs != 2 {
		t.Fatalf("all-NaN summary: %+v", allNaN)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || !math.IsNaN(empty.Min) {
		t.Fatalf("empty summary: %+v", empty)
	}
}

// TestDecodeValuesZeroAlloc pins the block decode path at zero
// allocations when the caller supplies a sufficient buffer — the pager
// depends on this to keep Next() allocation-flat.
func TestDecodeValuesZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fixed := make([]float64, 1024)
	xor := make([]float64, 1024)
	for i := range fixed {
		fixed[i] = math.Round(math.Abs(rng.NormFloat64())*1000) / 1000
		xor[i] = rng.NormFloat64()
	}
	var enc Encoder
	fixedPayload := enc.AppendValues(nil, fixed)
	xorPayload := enc.AppendValues(nil, xor)
	dst := make([]float64, 1024)
	for name, payload := range map[string][]byte{"fixed": fixedPayload, "xor": xorPayload} {
		allocs := testing.AllocsPerRun(100, func() {
			var err error
			dst, _, err = DecodeValues(payload, dst)
			if err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s decode: %.1f allocs/op, want 0", name, allocs)
		}
	}
	ts := make([]int64, 1024)
	for i := range ts {
		ts[i] = int64(i) * 3600
	}
	tsPayload := AppendTimestamps(nil, ts)
	tsDst := make([]int64, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		tsDst, _, err = DecodeTimestamps(tsPayload, tsDst)
		if err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("timestamp decode: %.1f allocs/op, want 0", allocs)
	}
}

func TestDecodeValuesTruncated(t *testing.T) {
	vals := []float64{1.5, 2.25, 3.125, 4, 5, 6, 7, 8}
	var enc Encoder
	payload := enc.AppendValues(nil, vals)
	for cut := 0; cut < len(payload); cut++ {
		if _, _, err := DecodeValues(payload[:cut], nil); err == nil {
			// A prefix that still decodes fully must be impossible:
			// the count header promises 8 values.
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(payload))
		}
	}
	if _, _, err := DecodeValues(nil, nil); err == nil {
		t.Fatal("empty payload decoded without error")
	}
}
