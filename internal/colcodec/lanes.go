package colcodec

import "math"

// LaneSummary is the per-hour reduction of one block on the implicit
// hourly grid, plus the structural facts the segment layer turns into
// block flags. Lanes exist so compressed-domain kernels can consume
// whole blocks without decoding them; the bit-identity rules below are
// what make that safe.
type LaneSummary struct {
	// Sums[h] accumulates the block's values whose global row index is
	// congruent to h mod 24, in row order. The first value in a lane
	// assigns rather than adds, so a lane holding exactly one value
	// carries that value's bit pattern exactly (negative zero and NaN
	// payload bits included) — the property the PAR fast path uses to
	// reconstruct short blocks from lanes alone.
	Sums [24]float64
	// Counts[h] is the number of rows in lane h. It is derivable from
	// the block's start and count on the implicit grid; it is carried
	// here so callers and tests can check the reduction directly.
	Counts [24]int32
	// Constant reports that every value in the block shares one bit
	// pattern (so the block reconstructs as fill of its first value,
	// which equals the summary Min).
	Constant bool
	// Periodic reports that the block is day-aligned (start and count
	// both ≡ 0 mod 24) and each hour-of-day's values share one bit
	// pattern, so the block reconstructs as a tiling of Pattern.
	Periodic bool
	// Pattern is the 24-value tile when Periodic; zero otherwise.
	Pattern [24]float64
}

// SummarizeHours fills ls with the per-hour reduction of a block whose
// first row sits at global hour index start. It returns false — and
// leaves ls zeroed past the point of failure — when the block is empty
// or contains NaNs: NaN-bearing blocks carry no lanes and always take
// the decode path in the compressed-domain kernels.
func SummarizeHours(start int, vals []float64, ls *LaneSummary) bool {
	*ls = LaneSummary{}
	if len(vals) == 0 {
		return false
	}
	first := math.Float64bits(vals[0])
	constant := true
	periodic := start%24 == 0 && len(vals)%24 == 0
	var seen [24]bool
	for i, v := range vals {
		if math.IsNaN(v) {
			*ls = LaneSummary{}
			return false
		}
		b := math.Float64bits(v)
		if b != first {
			constant = false
		}
		if i < 24 {
			ls.Pattern[i] = v
		} else if periodic && b != math.Float64bits(ls.Pattern[i%24]) {
			periodic = false
		}
		h := (start + i) % 24
		if !seen[h] {
			ls.Sums[h] = v
			seen[h] = true
		} else {
			ls.Sums[h] += v
		}
		ls.Counts[h]++
	}
	ls.Constant = constant
	ls.Periodic = periodic
	if !periodic {
		ls.Pattern = [24]float64{}
	}
	return true
}
