// Package colcodec implements the compressed block codecs behind the
// column store's segment format: delta-of-delta varint timestamp
// encoding and four lossless float64 value encodings chosen per block.
//
// A block is one consumer's contiguous row range (the segment layer
// fixes the row count). Values are encoded in whichever mode is
// smaller-safe for the block's payload:
//
//   - run-length: runs of bit-identical values become (raw bits, run
//     length) pairs. Near-constant series — vacant meters, flat
//     tariffs, imputed stretches — collapse to a handful of bytes per
//     block regardless of length.
//   - dictionary: when a block holds at most 64 distinct bit patterns,
//     values become bit-packed indexes into a small table of raw
//     bits. This wins on repetitive-but-interleaved series where runs
//     are short.
//   - fixed-point: when every value is bit-exactly representable as a
//     decimal with at most 8 fractional digits (true for anything that
//     round-tripped through the benchmark's CSV formatting), values
//     become scaled integers and their deltas are zigzag bit-packed in
//     mini-batches of 128 with a per-batch bit width. Gaussian hourly
//     readings at Wh resolution land near 10-14 bits per reading.
//   - XOR: Gorilla-style XOR of consecutive IEEE-754 bit patterns with
//     leading/trailing-zero windows. This is the fallback that stays
//     lossless for every bit pattern — NaN payloads, infinities,
//     denormals and negative zero included.
//
// The repeat modes are probed first with one scan that computes their
// exact encoded sizes; either is chosen only when it beats one byte
// per value, a bar the fixed/XOR modes never get near on real meter
// blocks, so the selection is deterministic and never inflates a block
// that the dense modes handle well. All four modes decode to
// bit-identical float64s (run-length and dictionary store raw bit
// patterns verbatim); the segment pager and every analytic above it
// rely on that.
//
// Timestamps compress as delta-of-delta with run-length encoding: a
// regular hourly block costs a handful of bytes regardless of length,
// while irregular gaps degrade gracefully to one varint pair per
// distinct second difference.
package colcodec

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"
)

// Value payload modes (byte 0 after the count varint).
const (
	modeFixed = 0
	modeXOR   = 1
	modeRLE   = 2
	modeDict  = 3
)

// maxDict caps the dictionary mode's table size. 64 entries keep the
// first-appearance lookup a short linear scan at encode time and the
// decode table a small stack array, while covering every realistic
// repetitive block (tariff steps, imputation constants, sentinel
// mixes); anything richer is better served by fixed/XOR anyway.
const maxDict = 64

// maxFixedScale caps the decimal scaling exponent probed by the
// fixed-point mode: 10^8 resolves anything the repo's CSV formatter
// ('g', 6 significant digits) can emit for meter-sized magnitudes.
const maxFixedScale = 8

// deltaBatch is the fixed-point mini-batch size: one width byte per
// batch amortizes to ~0.06 bits/value while keeping a single outlier
// from widening more than 128 deltas.
const deltaBatch = 128

var pow10 = [maxFixedScale + 1]float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// negZeroBits is the IEEE-754 bit pattern of -0.0.
const negZeroBits = uint64(1) << 63

// ErrCorrupt reports a malformed or truncated payload.
var ErrCorrupt = errors.New("colcodec: corrupt payload")

// Summary carries the per-block statistics stored in block headers.
// Min and Max are first-attainer extrema over the non-NaN values using
// IEEE < and > — exactly the scan stats.MinMax performs — so combining
// block summaries of a NaN-free series reproduces the full-series scan
// bit for bit (including which of -0/+0 wins). Sum and SumSq cover the
// non-NaN values in block order. When every value is NaN (or the block
// is empty) Min and Max are NaN and the sums are zero.
type Summary struct {
	Count int
	NaNs  int
	Min   float64
	Max   float64
	Sum   float64
	SumSq float64
}

// Summarize computes a block summary in one pass.
func Summarize(vals []float64) Summary {
	s := Summary{Count: len(vals), Min: math.NaN(), Max: math.NaN()}
	seen := false
	for _, v := range vals {
		if math.IsNaN(v) {
			s.NaNs++
			continue
		}
		if !seen {
			s.Min, s.Max = v, v
			seen = true
		} else {
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
		s.Sum += v
		s.SumSq += v * v
	}
	return s
}

// zigzag folds signed deltas into unsigned space, small magnitudes
// first.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encoder carries reusable scratch for block encoding; the zero value
// is ready to use. It is not safe for concurrent use.
type Encoder struct {
	ints []int64
	zz   []uint64
}

// AppendValues appends the encoded form of vals to dst and returns the
// extended slice. The payload is self-delimiting and decodes with
// DecodeValues to bit-identical float64s.
func (e *Encoder) AppendValues(dst []byte, vals []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	if len(vals) == 0 {
		return dst
	}
	if mode, ok := repeatMode(vals); ok {
		if mode == modeRLE {
			return appendRLE(dst, vals)
		}
		return e.appendDict(dst, vals)
	}
	if scale, ok := e.fixedScale(vals); ok {
		return e.appendFixed(dst, scale)
	}
	return appendXOR(dst, vals)
}

// uvarintLen is the encoded size of u as a uvarint.
func uvarintLen(u uint64) int { return (bits.Len64(u|1) + 6) / 7 }

// repeatMode scans the block once, computing the exact encoded sizes
// of the run-length and dictionary modes, and picks the smaller when
// it beats one byte per value — a bar that guarantees the repeat mode
// is a clear win over what fixed/XOR would produce. The scan is bit-
// pattern based so NaN payloads and signed zeros count as themselves.
func repeatMode(vals []float64) (byte, bool) {
	var dict [maxDict]uint64
	d := 0
	rleBytes := 1 // mode byte
	run := 0
	var prev uint64
	for i, v := range vals {
		b := math.Float64bits(v)
		if i == 0 || b != prev {
			if i > 0 {
				rleBytes += 8 + uvarintLen(uint64(run))
			}
			prev, run = b, 1
			if d <= maxDict {
				k := 0
				for k < d && dict[k] != b {
					k++
				}
				if k == d {
					if d == maxDict {
						d = maxDict + 1 // overflow: dictionary mode is out
					} else {
						dict[d] = b
						d++
					}
				}
			}
		} else {
			run++
		}
	}
	rleBytes += 8 + uvarintLen(uint64(run))
	best, mode := rleBytes, byte(modeRLE)
	if d <= maxDict {
		w := bits.Len(uint(d - 1))
		if dictBytes := 2 + 8*d + (len(vals)*w+7)/8; dictBytes < best {
			best, mode = dictBytes, modeDict
		}
	}
	if best >= len(vals) {
		return 0, false
	}
	return mode, true
}

// appendRLE emits (raw 8-byte bit pattern, uvarint run length) pairs;
// the runs sum exactly to the block count, which delimits the payload.
func appendRLE(dst []byte, vals []float64) []byte {
	dst = append(dst, modeRLE)
	i := 0
	for i < len(vals) {
		b := math.Float64bits(vals[i])
		run := 1
		for i+run < len(vals) && math.Float64bits(vals[i+run]) == b {
			run++
		}
		dst = binary.LittleEndian.AppendUint64(dst, b)
		dst = binary.AppendUvarint(dst, uint64(run))
		i += run
	}
	return dst
}

// appendDict emits the table size, the raw bit patterns in first-
// appearance order, then every value as a ceil(log2(d))-bit index.
// The caller (repeatMode) guarantees 1 <= d <= maxDict.
func (e *Encoder) appendDict(dst []byte, vals []float64) []byte {
	var dict [maxDict]uint64
	d := 0
	if cap(e.zz) < len(vals) {
		e.zz = make([]uint64, len(vals))
	}
	idx := e.zz[:len(vals)]
	for i, v := range vals {
		b := math.Float64bits(v)
		k := 0
		for k < d && dict[k] != b {
			k++
		}
		if k == d {
			dict[d] = b
			d++
		}
		idx[i] = uint64(k)
	}
	dst = append(dst, modeDict, byte(d))
	for k := 0; k < d; k++ {
		dst = binary.LittleEndian.AppendUint64(dst, dict[k])
	}
	return appendPacked(dst, idx, uint(bits.Len(uint(d-1))))
}

// fixedScale probes for the smallest decimal scale at which every value
// round-trips bit-exactly through round(v*10^s)/10^s, filling e.ints
// with the scaled integers on success. Success at scale s implies
// success at any larger scale (both sides are correctly-rounded forms
// of the same rational), so a single escalating pass finds the minimum.
func (e *Encoder) fixedScale(vals []float64) (int, bool) {
	scale := 0
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		if math.Float64bits(v) == negZeroBits {
			// int64(-0.0) is +0: the sign bit would not survive the
			// integer round trip.
			return 0, false
		}
		for {
			p := pow10[scale]
			scaled := math.Round(v * p)
			if math.Abs(scaled) >= 1<<51 {
				return 0, false
			}
			if math.Float64bits(scaled/p) == math.Float64bits(v) {
				break
			}
			if scale == maxFixedScale {
				return 0, false
			}
			scale++
		}
	}
	if cap(e.ints) < len(vals) {
		e.ints = make([]int64, len(vals))
	}
	e.ints = e.ints[:len(vals)]
	p := pow10[scale]
	for i, v := range vals {
		e.ints[i] = int64(math.Round(v * p))
	}
	return scale, true
}

func (e *Encoder) appendFixed(dst []byte, scale int) []byte {
	ints := e.ints
	dst = append(dst, modeFixed, byte(scale))
	dst = binary.AppendUvarint(dst, zigzag(ints[0]))
	if len(ints) == 1 {
		return dst
	}
	if cap(e.zz) < len(ints)-1 {
		e.zz = make([]uint64, len(ints)-1)
	}
	zz := e.zz[:len(ints)-1]
	for i := 1; i < len(ints); i++ {
		zz[i-1] = zigzag(ints[i] - ints[i-1])
	}
	for off := 0; off < len(zz); off += deltaBatch {
		end := off + deltaBatch
		if end > len(zz) {
			end = len(zz)
		}
		batch := zz[off:end]
		w := uint(0)
		for _, u := range batch {
			if b := uint(bits.Len64(u)); b > w {
				w = b
			}
		}
		dst = append(dst, byte(w))
		dst = appendPacked(dst, batch, w)
	}
	return dst
}

// appendPacked packs each value's low w bits LSB-first into dst.
func appendPacked(dst []byte, zz []uint64, w uint) []byte {
	if w == 0 {
		return dst
	}
	var acc uint64
	var n uint
	for _, v := range zz {
		acc |= v << n
		if fit := 64 - n; w >= fit {
			dst = append(dst, byte(acc), byte(acc>>8), byte(acc>>16), byte(acc>>24),
				byte(acc>>32), byte(acc>>40), byte(acc>>48), byte(acc>>56))
			acc = v >> fit
			n = w - fit
		} else {
			n += w
			for n >= 8 {
				dst = append(dst, byte(acc))
				acc >>= 8
				n -= 8
			}
		}
	}
	for n > 0 {
		dst = append(dst, byte(acc))
		acc >>= 8
		if n >= 8 {
			n -= 8
		} else {
			n = 0
		}
	}
	return dst
}

func appendXOR(dst []byte, vals []float64) []byte {
	dst = append(dst, modeXOR)
	bw := bitWriter{b: dst}
	prev := math.Float64bits(vals[0])
	bw.write(prev, 64)
	var pLead, pTrail, pSig uint
	havePrev := false
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		x := prev ^ cur
		prev = cur
		if x == 0 {
			bw.write(0, 1)
			continue
		}
		bw.write(1, 1)
		lead := uint(bits.LeadingZeros64(x))
		trail := uint(bits.TrailingZeros64(x))
		sig := 64 - lead - trail
		if havePrev && lead >= pLead && trail >= pTrail {
			bw.write(0, 1)
			bw.write(x>>pTrail, pSig)
			continue
		}
		bw.write(1, 1)
		bw.write(uint64(lead), 6)
		bw.write(uint64(sig-1), 6)
		bw.write(x>>trail, sig)
		pLead, pTrail, pSig = lead, trail, sig
		havePrev = true
	}
	return bw.close()
}

// DecodeValues decodes a payload produced by AppendValues. dst is used
// as the output buffer when its capacity suffices (a zero-allocation
// decode); otherwise a fresh slice is allocated. It returns the decoded
// values and the number of payload bytes consumed.
func DecodeValues(payload []byte, dst []float64) ([]float64, int, error) {
	cnt, hn := binary.Uvarint(payload)
	if hn <= 0 || cnt > math.MaxInt32 {
		return nil, 0, ErrCorrupt
	}
	count := int(cnt)
	if count == 0 {
		return dst[:0], hn, nil
	}
	if cap(dst) < count {
		dst = make([]float64, count)
	}
	dst = dst[:count]
	if hn >= len(payload) {
		return nil, 0, ErrCorrupt
	}
	mode := payload[hn]
	body := payload[hn+1:]
	var used int
	var err error
	switch mode {
	case modeFixed:
		used, err = decodeFixed(body, dst)
	case modeXOR:
		used, err = decodeXOR(body, dst)
	case modeRLE:
		used, err = decodeRLE(body, dst)
	case modeDict:
		used, err = decodeDict(body, dst)
	default:
		return nil, 0, ErrCorrupt
	}
	if err != nil {
		return nil, 0, err
	}
	return dst, hn + 1 + used, nil
}

func decodeFixed(b []byte, dst []float64) (int, error) {
	if len(b) < 1 {
		return 0, ErrCorrupt
	}
	scale := int(b[0])
	if scale > maxFixedScale {
		return 0, ErrCorrupt
	}
	p := pow10[scale]
	off := 1
	u, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	off += n
	cur := unzigzag(u)
	dst[0] = float64(cur) / p
	i := 1
	for i < len(dst) {
		if off >= len(b) {
			return 0, ErrCorrupt
		}
		w := uint(b[off])
		off++
		end := i + deltaBatch
		if end > len(dst) {
			end = len(dst)
		}
		if w > 64 {
			return 0, ErrCorrupt
		}
		if w == 0 {
			v := float64(cur) / p
			for ; i < end; i++ {
				dst[i] = v
			}
			continue
		}
		br := bitReader{b: b[off:]}
		for ; i < end; i++ {
			u, err := br.read(w)
			if err != nil {
				return 0, err
			}
			cur += unzigzag(u)
			dst[i] = float64(cur) / p
		}
		off += br.consumed()
	}
	return off, nil
}

func decodeXOR(b []byte, dst []float64) (int, error) {
	br := bitReader{b: b}
	prev, err := br.read(64)
	if err != nil {
		return 0, err
	}
	dst[0] = math.Float64frombits(prev)
	var pLead, pTrail, pSig uint
	havePrev := false
	for i := 1; i < len(dst); i++ {
		ctl, err := br.read(1)
		if err != nil {
			return 0, err
		}
		if ctl == 0 {
			dst[i] = math.Float64frombits(prev)
			continue
		}
		reuse, err := br.read(1)
		if err != nil {
			return 0, err
		}
		var lead, sig uint
		if reuse == 0 {
			if !havePrev {
				return 0, ErrCorrupt
			}
			lead, sig = pLead, pSig
			// The window low bound is pTrail; meaningful bits shift back
			// by it below.
			m, err := br.read(sig)
			if err != nil {
				return 0, err
			}
			prev ^= m << pTrail
			dst[i] = math.Float64frombits(prev)
			continue
		}
		l, err := br.read(6)
		if err != nil {
			return 0, err
		}
		s, err := br.read(6)
		if err != nil {
			return 0, err
		}
		lead = uint(l)
		sig = uint(s) + 1
		if lead+sig > 64 {
			return 0, ErrCorrupt
		}
		trail := 64 - lead - sig
		m, err := br.read(sig)
		if err != nil {
			return 0, err
		}
		prev ^= m << trail
		dst[i] = math.Float64frombits(prev)
		pLead, pTrail, pSig = lead, trail, sig
		havePrev = true
	}
	return br.consumed(), nil
}

func decodeRLE(b []byte, dst []float64) (int, error) {
	off, i := 0, 0
	for i < len(dst) {
		if off+8 > len(b) {
			return 0, ErrCorrupt
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		r, n := binary.Uvarint(b[off:])
		if n <= 0 || r == 0 || r > uint64(len(dst)-i) {
			return 0, ErrCorrupt
		}
		off += n
		for j := uint64(0); j < r; j++ {
			dst[i] = v
			i++
		}
	}
	return off, nil
}

func decodeDict(b []byte, dst []float64) (int, error) {
	if len(b) < 1 {
		return 0, ErrCorrupt
	}
	d := int(b[0])
	if d == 0 || d > maxDict || len(b) < 1+8*d {
		return 0, ErrCorrupt
	}
	var dict [maxDict]float64
	off := 1
	for k := 0; k < d; k++ {
		dict[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	w := uint(bits.Len(uint(d - 1)))
	if w == 0 {
		for i := range dst {
			dst[i] = dict[0]
		}
		return off, nil
	}
	br := bitReader{b: b[off:]}
	for i := range dst {
		u, err := br.read(w)
		if err != nil {
			return 0, err
		}
		if u >= uint64(d) {
			return 0, ErrCorrupt
		}
		dst[i] = dict[u]
	}
	return off + br.consumed(), nil
}

// AppendTimestamps appends the delta-of-delta + run-length encoding of
// ts (any int64 clock: hour indexes, epoch seconds) to dst.
func AppendTimestamps(dst []byte, ts []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	if len(ts) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, zigzag(ts[0]))
	if len(ts) == 1 {
		return dst
	}
	prevDelta := ts[1] - ts[0]
	dst = binary.AppendUvarint(dst, zigzag(prevDelta))
	// Run-length over equal delta-of-deltas: a regular series is one
	// (0, n-2) pair.
	i := 2
	for i < len(ts) {
		delta := ts[i] - ts[i-1]
		dod := delta - prevDelta
		run := 1
		for i+run < len(ts) && ts[i+run]-ts[i+run-1] == delta {
			run++
		}
		dst = binary.AppendUvarint(dst, zigzag(dod))
		dst = binary.AppendUvarint(dst, uint64(run))
		prevDelta = delta
		i += run
	}
	return dst
}

// DecodeTimestamps decodes a payload produced by AppendTimestamps,
// reusing dst when its capacity suffices. It returns the timestamps and
// the number of payload bytes consumed.
func DecodeTimestamps(payload []byte, dst []int64) ([]int64, int, error) {
	cnt, off := binary.Uvarint(payload)
	if off <= 0 || cnt > math.MaxInt32 {
		return nil, 0, ErrCorrupt
	}
	count := int(cnt)
	if count == 0 {
		return dst[:0], off, nil
	}
	if cap(dst) < count {
		dst = make([]int64, count)
	}
	dst = dst[:count]
	u, n := binary.Uvarint(payload[off:])
	if n <= 0 {
		return nil, 0, ErrCorrupt
	}
	off += n
	dst[0] = unzigzag(u)
	if count == 1 {
		return dst, off, nil
	}
	u, n = binary.Uvarint(payload[off:])
	if n <= 0 {
		return nil, 0, ErrCorrupt
	}
	off += n
	delta := unzigzag(u)
	dst[1] = dst[0] + delta
	i := 2
	for i < count {
		u, n = binary.Uvarint(payload[off:])
		if n <= 0 {
			return nil, 0, ErrCorrupt
		}
		off += n
		dod := unzigzag(u)
		r, n := binary.Uvarint(payload[off:])
		if n <= 0 || r == 0 || r > uint64(count-i) {
			return nil, 0, ErrCorrupt
		}
		off += n
		delta += dod
		for j := uint64(0); j < r; j++ {
			dst[i] = dst[i-1] + delta
			i++
		}
	}
	return dst, off, nil
}

// bitWriter packs bits LSB-first into a byte slice.
type bitWriter struct {
	b   []byte
	acc uint64
	n   uint
}

func (w *bitWriter) write(v uint64, nbits uint) {
	if nbits == 0 {
		return
	}
	if nbits < 64 {
		v &= 1<<nbits - 1
	}
	w.acc |= v << w.n
	if fit := 64 - w.n; nbits >= fit {
		w.b = append(w.b, byte(w.acc), byte(w.acc>>8), byte(w.acc>>16), byte(w.acc>>24),
			byte(w.acc>>32), byte(w.acc>>40), byte(w.acc>>48), byte(w.acc>>56))
		w.acc = v >> fit
		w.n = nbits - fit
	} else {
		w.n += nbits
		for w.n >= 8 {
			w.b = append(w.b, byte(w.acc))
			w.acc >>= 8
			w.n -= 8
		}
	}
}

// close flushes the partial tail byte(s) and returns the buffer.
func (w *bitWriter) close() []byte {
	for w.n > 0 {
		w.b = append(w.b, byte(w.acc))
		w.acc >>= 8
		if w.n >= 8 {
			w.n -= 8
		} else {
			w.n = 0
		}
	}
	return w.b
}

// bitReader mirrors bitWriter: LSB-first reads over a byte slice.
type bitReader struct {
	b   []byte
	i   int
	acc uint64
	n   uint
}

// read returns the next nbits bits (nbits <= 64).
func (r *bitReader) read(nbits uint) (uint64, error) {
	if nbits > 32 {
		lo, err := r.read32(32)
		if err != nil {
			return 0, err
		}
		hi, err := r.read32(nbits - 32)
		if err != nil {
			return 0, err
		}
		return lo | hi<<32, nil
	}
	return r.read32(nbits)
}

func (r *bitReader) read32(nbits uint) (uint64, error) {
	for r.n < nbits {
		if r.i >= len(r.b) {
			return 0, ErrCorrupt
		}
		r.acc |= uint64(r.b[r.i]) << r.n
		r.i++
		r.n += 8
	}
	v := r.acc & (1<<nbits - 1)
	r.acc >>= nbits
	r.n -= nbits
	return v, nil
}

// consumed returns the number of whole bytes the reader has advanced
// past (any partially consumed byte counts as consumed).
func (r *bitReader) consumed() int { return r.i }
