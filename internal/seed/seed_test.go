package seed

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func TestGenerateValidDataset(t *testing.T) {
	ds, err := Generate(Config{Consumers: 10, Days: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	if len(ds.Series) != 10 {
		t.Fatalf("series = %d", len(ds.Series))
	}
	for i, s := range ds.Series {
		if s.ID != timeseries.ID(i+1) {
			t.Errorf("series %d ID = %d", i, s.ID)
		}
		if s.Days() != 60 {
			t.Errorf("series %d days = %d", i, s.Days())
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	ds, err := Generate(Config{Consumers: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Series[0].Days() != timeseries.DaysPerYear {
		t.Errorf("default days = %d", ds.Series[0].Days())
	}
}

func TestGenerateFirstID(t *testing.T) {
	ds, err := Generate(Config{Consumers: 3, Days: 7, Seed: 3, FirstID: 100})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Series[0].ID != 100 || ds.Series[2].ID != 102 {
		t.Errorf("IDs = %d..%d", ds.Series[0].ID, ds.Series[2].ID)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Consumers: 0}); err == nil {
		t.Error("0 consumers: want error")
	}
	if _, err := Generate(Config{Consumers: 1, Days: -1}); err == nil {
		t.Error("negative days: want error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{Consumers: 4, Days: 30, Seed: 9})
	b, _ := Generate(Config{Consumers: 4, Days: 30, Seed: 9})
	for i := range a.Series {
		for j := range a.Series[i].Readings {
			if a.Series[i].Readings[j] != b.Series[i].Readings[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
}

func TestGenerateConsumersDiffer(t *testing.T) {
	ds, _ := Generate(Config{Consumers: 6, Days: 30, Seed: 4})
	for i := 0; i < len(ds.Series); i++ {
		for j := i + 1; j < len(ds.Series); j++ {
			same := true
			for k := range ds.Series[i].Readings {
				if ds.Series[i].Readings[k] != ds.Series[j].Readings[k] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("consumers %d and %d are identical", i, j)
			}
		}
	}
}

func TestGenerateThermalResponse(t *testing.T) {
	// Consumption in the coldest hours should exceed consumption in
	// mild hours on average (heating load dominates the seed climate).
	ds, err := Generate(Config{Consumers: 20, Days: 365, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var cold, mild stats.Moments
	for _, s := range ds.Series {
		for i, r := range s.Readings {
			tv := ds.Temperature.Values[i]
			switch {
			case tv < 0:
				cold.Add(r)
			case tv >= 15 && tv <= 20:
				mild.Add(r)
			}
		}
	}
	if cold.N() == 0 || mild.N() == 0 {
		t.Fatal("climate did not produce both cold and mild hours")
	}
	if cold.Mean() <= mild.Mean() {
		t.Errorf("cold-hour mean %g <= mild-hour mean %g", cold.Mean(), mild.Mean())
	}
}

func TestArchetypesDistinct(t *testing.T) {
	arch := Archetypes()
	if len(arch) < 3 {
		t.Fatalf("only %d archetypes", len(arch))
	}
	names := map[string]bool{}
	for _, a := range arch {
		if names[a.Name] {
			t.Errorf("duplicate archetype %q", a.Name)
		}
		names[a.Name] = true
		if a.NoiseStdDev <= 0 || a.WeekendFactor <= 0 {
			t.Errorf("archetype %q has nonsensical parameters", a.Name)
		}
		for h, v := range a.Activity {
			if v <= 0 {
				t.Errorf("archetype %q activity[%d] = %g", a.Name, h, v)
			}
		}
	}
}

func TestGeneratePairSameHouseholdsDifferentWeather(t *testing.T) {
	cfg := Config{Consumers: 4, Days: 60, Seed: 13}
	train, test, err := GeneratePair(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	// The training year is exactly Generate's output for the same config.
	plain, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Series {
		for j := range plain.Series[i].Readings {
			if train.Series[i].Readings[j] != plain.Series[i].Readings[j] {
				t.Fatal("train year differs from Generate output")
			}
		}
	}
	// Same households, different weather and readings.
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range train.Series {
		if train.Series[i].ID != test.Series[i].ID {
			t.Fatalf("household %d: IDs %d vs %d", i, train.Series[i].ID, test.Series[i].ID)
		}
	}
	sameWeather := true
	for i := range train.Temperature.Values {
		if train.Temperature.Values[i] != test.Temperature.Values[i] {
			sameWeather = false
			break
		}
	}
	if sameWeather {
		t.Error("test year reused the training weather")
	}
	// Behaviour persists: per-household mean consumption across years
	// stays within a factor reflecting weather variation.
	for i := range train.Series {
		m1, _ := stats.Mean(train.Series[i].Readings)
		m2, _ := stats.Mean(test.Series[i].Readings)
		if m2 < m1*0.5 || m2 > m1*2 {
			t.Errorf("household %d mean changed %g -> %g", train.Series[i].ID, m1, m2)
		}
	}
}
