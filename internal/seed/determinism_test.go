package seed

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// datasetBytes serializes every reading (and the temperature series)
// through math.Float64bits, so comparison is exact at the bit level —
// "close" is not good enough for a reproducible generator.
func datasetBytes(t *testing.T, ds *timeseries.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, s := range ds.Series {
		if err := binary.Write(&buf, binary.LittleEndian, int64(s.ID)); err != nil {
			t.Fatal(err)
		}
		if err := binary.Write(&buf, binary.LittleEndian, s.Readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, ds.Temperature.Values); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGenerateByteIdentical asserts the paper's core generator
// requirement (§4): two runs with the same seed produce byte-identical
// output (bit-level, stronger than the per-reading check in
// seed_test.go — it also covers IDs and the temperature year), and a
// different seed produces different output.
func TestGenerateByteIdentical(t *testing.T) {
	cfg := Config{Consumers: 12, Days: 30, Seed: 99}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetBytes(t, a), datasetBytes(t, b)) {
		t.Fatal("same seed produced different datasets")
	}

	cfg.Seed = 100
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(datasetBytes(t, a), datasetBytes(t, c)) {
		t.Fatal("different seeds produced identical datasets")
	}
}

// TestGeneratePairSharesHouseholds asserts that the train split of
// GeneratePair is byte-identical to Generate with the same Config: the
// injected household rng stream must match across both entry points.
func TestGeneratePairSharesHouseholds(t *testing.T) {
	cfg := Config{Consumers: 8, Days: 21, Seed: 4}
	plain, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := GeneratePair(cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetBytes(t, plain), datasetBytes(t, train)) {
		t.Fatal("GeneratePair train year differs from Generate output")
	}
	if bytes.Equal(datasetBytes(t, train), datasetBytes(t, test)) {
		t.Fatal("test year identical to train year despite different weather seed")
	}
}
