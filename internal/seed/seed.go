// Package seed synthesizes the "small seed of real data" the paper's
// data generator starts from (§4). The real 27,300-household Ontario
// data set is private, so this package builds a structurally equivalent
// seed: each household draws an archetypal daily activity profile, a
// heating gradient, a cooling gradient, comfort setpoints and a noise
// level, and its hourly consumption is
//
//	activity(hour of day) * weekendFactor
//	  + heatingGradient * max(0, heatSetpoint - T)
//	  + coolingGradient * max(0, T - coolSetpoint)
//	  + Gaussian noise  (truncated at zero)
//
// — exactly the additive structure (activity + thermal + noise) that the
// paper's generator assumes when it disaggregates real consumers, so
// every downstream algorithm sees realistic inputs.
package seed

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/weather"
)

// Archetype is a household behaviour template.
type Archetype struct {
	// Name describes the template.
	Name string
	// Activity is the 24-hour base activity load in kWh.
	Activity [timeseries.HoursPerDay]float64
	// HeatGradient and CoolGradient are kWh per degree below/above the
	// setpoints.
	HeatGradient, CoolGradient float64
	// HeatSetpoint and CoolSetpoint are the comfort band edges in C.
	HeatSetpoint, CoolSetpoint float64
	// NoiseStdDev is the white-noise level in kWh.
	NoiseStdDev float64
	// WeekendFactor scales activity load on days 5 and 6 of each week.
	WeekendFactor float64
}

// Archetypes returns the built-in household templates: a commuter couple
// (morning/evening peaks), a family (broad evening peak, high weekend
// use), a retiree (flat daytime use), a night-shift worker (inverted
// schedule) and an electrically heated rural home (strong thermal load).
func Archetypes() []Archetype {
	mk := func(name string, base, morning, evening, midday float64,
		hg, cg, hs, cs, noise, weekend float64) Archetype {
		a := Archetype{
			Name: name, HeatGradient: hg, CoolGradient: cg,
			HeatSetpoint: hs, CoolSetpoint: cs,
			NoiseStdDev: noise, WeekendFactor: weekend,
		}
		for h := 0; h < timeseries.HoursPerDay; h++ {
			v := base
			// Morning peak 6-9, evening peak 17-22, midday 10-16.
			switch {
			case h >= 6 && h <= 9:
				v += morning
			case h >= 17 && h <= 22:
				v += evening
			case h >= 10 && h <= 16:
				v += midday
			}
			a.Activity[h] = v
		}
		return a
	}
	// Thermal gradients are sized so the temperature signal dominates the
	// activity signal, as in the paper's Figure 1 (electrically heated and
	// cooled Ontario homes show clearly sloped percentile lines).
	return []Archetype{
		mk("commuter", 0.25, 0.6, 0.9, 0.05, 0.18, 0.15, 15, 22, 0.10, 1.3),
		mk("family", 0.40, 0.5, 1.2, 0.45, 0.25, 0.20, 16, 21, 0.15, 1.2),
		mk("retiree", 0.35, 0.3, 0.5, 0.55, 0.22, 0.12, 17, 23, 0.08, 1.0),
		mk("nightshift", 0.30, 0.1, 0.2, 0.1, 0.15, 0.10, 15, 22, 0.12, 1.1),
		mk("electric-heat", 0.35, 0.5, 0.8, 0.2, 0.45, 0.08, 18, 24, 0.12, 1.1),
	}
}

// Config controls seed generation.
type Config struct {
	// Consumers is the number of households to synthesize.
	Consumers int
	// Days is the length of each series in days. Default 365.
	Days int
	// Seed seeds the deterministic PRNG.
	Seed int64
	// FirstID numbers households from this ID. Default 1.
	FirstID timeseries.ID
}

// Generate synthesizes a seed dataset: Consumers households over one
// shared synthetic temperature year.
func Generate(cfg Config) (*timeseries.Dataset, error) {
	if cfg.Consumers <= 0 {
		return nil, fmt.Errorf("seed: consumers must be positive, got %d", cfg.Consumers)
	}
	if cfg.Days == 0 {
		cfg.Days = timeseries.DaysPerYear
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("seed: days must be positive, got %d", cfg.Days)
	}
	if cfg.FirstID == 0 {
		cfg.FirstID = 1
	}
	wcfg := weather.DefaultConfig()
	wcfg.Seed = cfg.Seed
	temp, err := weather.Generate(cfg.Days, wcfg)
	if err != nil {
		return nil, err
	}

	series := make([]*timeseries.Series, cfg.Consumers)
	for i, h := range drawHouseholds(cfg, rand.New(rand.NewSource(cfg.Seed+1))) {
		series[i] = h.synthesize(temp, rand.New(rand.NewSource(cfg.Seed+2000+int64(i))))
	}
	return &timeseries.Dataset{Series: series, Temperature: temp}, nil
}

// GeneratePair generates the SAME households over two different weather
// years: a training year (identical to Generate's output for the same
// Config) and a test year driven by testWeatherSeed. It exists for
// train/test scenarios such as streaming anomaly detection, where a
// model fitted on one year must generalize to the next.
func GeneratePair(cfg Config, testWeatherSeed int64) (train, test *timeseries.Dataset, err error) {
	train, err = Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	wcfg := weather.DefaultConfig()
	wcfg.Seed = testWeatherSeed
	days := cfg.Days
	if days == 0 {
		days = timeseries.DaysPerYear
	}
	testTemp, err := weather.Generate(days, wcfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.FirstID == 0 {
		cfg.FirstID = 1
	}
	series := make([]*timeseries.Series, cfg.Consumers)
	for i, h := range drawHouseholds(cfg, rand.New(rand.NewSource(cfg.Seed+1))) {
		// A different noise stream for the test year, same behaviour.
		series[i] = h.synthesize(testTemp, rand.New(rand.NewSource(testWeatherSeed+3000+int64(i))))
	}
	return train, &timeseries.Dataset{Series: series, Temperature: testTemp}, nil
}

// household is one consumer's fixed behavioural parameters.
type household struct {
	id            timeseries.ID
	arch          Archetype
	scale, hg, cg float64
	shift         int
}

// drawHouseholds deterministically derives the household parameters
// implied by a Config (independent of the weather or noise streams).
// The rng is injected by the caller — both Generate and GeneratePair
// must hand it the same seeded stream so the SAME households emerge.
func drawHouseholds(cfg Config, rng *rand.Rand) []household {
	arch := Archetypes()
	out := make([]household, cfg.Consumers)
	for i := range out {
		a := arch[rng.Intn(len(arch))]
		out[i] = household{
			id:    cfg.FirstID + timeseries.ID(i),
			arch:  a,
			scale: 0.7 + rng.Float64()*0.6, // household size factor
			hg:    a.HeatGradient * (0.6 + rng.Float64()*0.8),
			cg:    a.CoolGradient * (0.6 + rng.Float64()*0.8),
			shift: rng.Intn(3) - 1, // schedule shifted by -1, 0 or +1 hours
		}
	}
	return out
}

// synthesize builds the household's series for one weather period using
// the given noise stream.
func (h household) synthesize(temp *timeseries.Temperature, noise *rand.Rand) *timeseries.Series {
	a := h.arch
	readings := make([]float64, len(temp.Values))
	for i := range readings {
		day := i / timeseries.HoursPerDay
		hour := i % timeseries.HoursPerDay
		ah := (hour + h.shift + timeseries.HoursPerDay) % timeseries.HoursPerDay
		act := a.Activity[ah] * h.scale
		if day%7 >= 5 {
			act *= a.WeekendFactor
		}
		t := temp.Values[i]
		thermal := h.hg*math.Max(0, a.HeatSetpoint-t) + h.cg*math.Max(0, t-a.CoolSetpoint)
		v := act + thermal + noise.NormFloat64()*a.NoiseStdDev
		if v < 0 {
			v = 0
		}
		readings[i] = v
	}
	return &timeseries.Series{ID: h.id, Readings: readings}
}
