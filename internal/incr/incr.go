// Package incr maintains the four benchmark analytics incrementally
// over the live append stream (paper §3 tasks 1-4, recast for the
// "append forever, query any time" engine contract in internal/core).
// An Analytics instance consumes the same []core.Reading batches the
// storage engines ingest — exec.Ingestor fans one committed stream to
// both — and keeps per-task state current:
//
//   - histogram: O(1) bucket deltas while a reading stays inside the
//     household's observed [min, max]; a range-extending reading
//     rebuilds that household from the mirrored series (histogram.go);
//   - 3-line: per-household sorted temperature bins with a re-fit only
//     when the extracted percentile point set actually changes — a
//     thermal-regime change — and a skip otherwise (threeline.go);
//   - PAR: a sliding window of the most recent WindowDays days, refit
//     per household at each completed day (par.go);
//   - similarity top-k: cached pairwise cosine scores with repair —
//     only pairs with a dirty (appended-to) endpoint are rescored
//     (topk.go).
//
// Exactness. Each maintainer's output is provably equal to a full
// recompute over the same committed readings: bit-identical for the
// histogram (same bucket function, same range) and top-k (commutative
// identical scoring into an insertion-order-independent heap), within
// 1e-9 for PAR and 3-line (identical-input refits; see the oracle
// tests). Redelivered hours are skipped exactly like the engines skip
// them, so the maintainers stay in lockstep with storage across
// retried batches.
//
// Analytics is not safe for concurrent use; callers serialize Consume
// and the result accessors (exec.Ingestor does).
package incr

import (
	"fmt"
	"sort"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/similarity"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// DefaultWindowDays is the default PAR sliding-window length.
const DefaultWindowDays = 28

// Config parameterizes the maintained analytics.
type Config struct {
	// Buckets is the histogram bucket count. Default histogram.DefaultBuckets.
	Buckets int
	// K is the top-k match count. Default similarity.DefaultK.
	K int
	// Order is the PAR auto-regressive order. Default par.DefaultOrder.
	Order int
	// WindowDays is the PAR sliding-window length in days. Default 28.
	WindowDays int
	// ThreeLine parameterizes the 3-line fit. Zero value = defaults.
	ThreeLine threeline.Config
}

func (c *Config) fillDefaults() {
	if c.Buckets <= 0 {
		c.Buckets = histogram.DefaultBuckets
	}
	if c.K <= 0 {
		c.K = similarity.DefaultK
	}
	if c.Order <= 0 {
		c.Order = par.DefaultOrder
	}
	if c.WindowDays <= 0 {
		c.WindowDays = DefaultWindowDays
	}
	if c.ThreeLine.BinWidth <= 0 {
		c.ThreeLine = threeline.DefaultConfig()
	}
}

// Stats counts the incremental work performed, distinguishing cheap
// delta updates from full per-household recomputes.
type Stats struct {
	Readings   int64 // fresh readings applied
	Duplicates int64 // redelivered hours skipped

	HistDeltas   int64 // O(1) bucket increments
	HistRebuilds int64 // range-extension rebuilds

	TLRefits int64 // 3-line refits (point set changed)
	TLSkips  int64 // 3-line refreshes skipped (point set unchanged)

	PARRefits int64 // sliding-window refits at completed days

	PairsRescored int64 // similarity pairs recomputed (dirty endpoint)
	PairsReused   int64 // similarity pairs served from cache
}

// Analytics incrementally maintains all four benchmark tasks.
type Analytics struct {
	cfg  Config
	ids  []timeseries.ID // ascending
	vals map[timeseries.ID][]float64
	temp []float64

	hist  map[timeseries.ID]*histState
	tl    map[timeseries.ID]*tlState
	parSt map[timeseries.ID]*parState
	topk  topkState

	stats Stats
}

// New returns an empty Analytics with the given configuration.
func New(cfg Config) *Analytics {
	cfg.fillDefaults()
	return &Analytics{
		cfg:   cfg,
		vals:  make(map[timeseries.ID][]float64),
		hist:  make(map[timeseries.ID]*histState),
		tl:    make(map[timeseries.ID]*tlState),
		parSt: make(map[timeseries.ID]*parState),
		topk: topkState{
			dirty:  make(map[timeseries.ID]bool),
			norms:  make(map[timeseries.ID]float64),
			scores: make(map[pairKey]float64),
		},
	}
}

// Consume applies one committed batch, mirroring the engines' ordering
// contract: per household in order and gap-free, with hours below the
// household's next expected hour skipped as redelivery. A mid-batch
// error leaves already-applied readings in place; retrying the batch
// after fixing the cause applies the remainder exactly once.
func (a *Analytics) Consume(batch []core.Reading) error {
	for i := range batch {
		r := &batch[i]
		if r.Hour < 0 {
			return fmt.Errorf("incr: negative hour %d for household %d", r.Hour, r.ID)
		}
		vs, known := a.vals[r.ID]
		if r.Hour < len(vs) {
			a.stats.Duplicates++
			continue
		}
		if r.Hour > len(vs) {
			return fmt.Errorf("incr: household %d: gap at hour %d, expected %d", r.ID, r.Hour, len(vs))
		}
		if !known {
			if r.ID <= 0 {
				return fmt.Errorf("incr: household id must be positive, got %d", r.ID)
			}
			a.ids = insertID(a.ids, r.ID)
		}
		switch {
		case r.Hour == len(a.temp):
			a.temp = append(a.temp, r.Temperature)
		case r.Hour > len(a.temp):
			return fmt.Errorf("incr: temperature gap: reading at hour %d, column covers %d", r.Hour, len(a.temp))
		}
		a.vals[r.ID] = append(vs, r.Consumption)
		a.stats.Readings++

		if err := a.applyHist(r.ID, r.Consumption); err != nil {
			return err
		}
		a.applyThreeLine(r.ID, r.Consumption, r.Temperature)
		if err := a.applyPAR(r.ID); err != nil {
			return err
		}
		a.topk.dirty[r.ID] = true
	}
	return nil
}

// Stats returns a copy of the work counters.
func (a *Analytics) Stats() Stats { return a.stats }

// IDs returns the registered households in ascending order.
func (a *Analytics) IDs() []timeseries.ID {
	return append([]timeseries.ID(nil), a.ids...)
}

// insertID adds id to the ascending list, keeping it sorted.
func insertID(ids []timeseries.ID, id timeseries.ID) []timeseries.ID {
	pos := sort.Search(len(ids), func(j int) bool { return ids[j] >= id })
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}
