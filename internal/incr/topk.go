package incr

import (
	"fmt"

	"github.com/smartmeter/smartbench/internal/similarity"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Incremental top-k similarity maintenance (task 4). The O(n²) score
// matrix is cached by unordered household pair and repaired rather
// than recomputed: a household an append touched is dirty, and only
// pairs with a dirty endpoint are rescored. A clean pair's two series
// are byte-for-byte the slices its cached score was computed from
// (series only ever grow, and growth dirties the household), so the
// cache is bit-identical to recomputation; rescored pairs use the same
// stats.Dot / norm-product scoring as similarity.ComputeNaive, and
// dot-product and multiplication commutativity make the single stored
// score per unordered pair serve both row orientations exactly.
// Rebuilt per-household heaps then match the full recompute because
// timeseries.TopK selection is insertion-order-independent under its
// total (score, ID) order.

type pairKey struct {
	lo, hi timeseries.ID // lo < hi
}

func orderPair(a, b timeseries.ID) pairKey {
	if a < b {
		return pairKey{a, b}
	}
	return pairKey{b, a}
}

type topkState struct {
	dirty  map[timeseries.ID]bool
	norms  map[timeseries.ID]float64
	scores map[pairKey]float64
}

// TopK returns the current top-k match lists in ascending household-ID
// order, repairing the score cache first. Like the batch task it
// requires at least two households of equal, nonzero length — call it
// at aligned points (e.g. shared day boundaries).
func (a *Analytics) TopK() ([]*similarity.Result, error) {
	n := len(a.ids)
	if n < 2 {
		return nil, similarity.ErrTooFew
	}
	length := len(a.vals[a.ids[0]])
	for _, id := range a.ids {
		if len(a.vals[id]) != length {
			return nil, fmt.Errorf("incr: series %d length %d differs from %d",
				id, len(a.vals[id]), length)
		}
	}
	if length == 0 {
		return nil, similarity.ErrEmptySeries
	}
	for id := range a.topk.dirty {
		a.topk.norms[id] = stats.Norm(a.vals[id])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ii, jj := a.ids[i], a.ids[j]
			pk := pairKey{ii, jj}
			if !a.topk.dirty[ii] && !a.topk.dirty[jj] {
				a.stats.PairsReused++
				continue
			}
			dot, err := stats.Dot(a.vals[ii], a.vals[jj])
			if err != nil {
				return nil, err
			}
			var score float64
			ni, nj := a.topk.norms[ii], a.topk.norms[jj]
			if !stats.IsZero(ni) && !stats.IsZero(nj) {
				score = dot / (ni * nj)
			}
			a.topk.scores[pk] = score
			a.stats.PairsRescored++
		}
	}
	for id := range a.topk.dirty {
		delete(a.topk.dirty, id)
	}
	out := make([]*similarity.Result, 0, n)
	for i := 0; i < n; i++ {
		tk := timeseries.NewTopK(a.cfg.K)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			tk.Add(a.ids[j], a.topk.scores[orderPair(a.ids[i], a.ids[j])])
		}
		out = append(out, &similarity.Result{ID: a.ids[i], Matches: tk.Results()})
	}
	return out, nil
}
