package incr

import (
	"sort"

	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Incremental 3-line maintenance (task 2). Appends keep each
// household's per-temperature-bin consumption values sorted (an
// insertion into a sorted slice yields the same contents as sorting
// from scratch, so the phase-T1 percentile extraction sees exactly the
// batch path's input). The expensive segmented fit only reruns when
// the extracted point set changes — a thermal-regime change: a bin
// crossing the population threshold or a percentile moving. Readings
// that land in still-sparse bins leave the point set untouched and the
// refresh is a skip.

type tlState struct {
	bins  map[int][]float64 // sorted consumption values per temperature bin
	stale bool

	// Last extracted point set and its fit.
	xs, lows, highs []float64
	res             *threeline.Result
	err             error
	fitted          bool
}

// applyThreeLine folds one fresh reading into the household's bins.
func (a *Analytics) applyThreeLine(id timeseries.ID, v, t float64) {
	st := a.tl[id]
	if st == nil {
		st = &tlState{bins: make(map[int][]float64)}
		a.tl[id] = st
	}
	b := threeline.BinIndex(t, a.cfg.ThreeLine.BinWidth)
	st.bins[b] = insertSorted(st.bins[b], v)
	st.stale = true
}

// insertSorted inserts v into ascending-sorted xs.
func insertSorted(xs []float64, v float64) []float64 {
	pos := sort.SearchFloat64s(xs, v)
	xs = append(xs, 0)
	copy(xs[pos+1:], xs[pos:])
	xs[pos] = v
	return xs
}

// refreshThreeLine re-extracts the household's percentile points and
// refits only if they changed since the last fit.
func (a *Analytics) refreshThreeLine(id timeseries.ID, st *tlState) {
	if !st.stale {
		return
	}
	st.stale = false
	xs, lows, highs := threeline.PointsFromSortedBins(st.bins, a.cfg.ThreeLine)
	if st.fitted && pointsEqual(xs, st.xs) && pointsEqual(lows, st.lows) && pointsEqual(highs, st.highs) {
		a.stats.TLSkips++
		return
	}
	st.xs, st.lows, st.highs = xs, lows, highs
	st.res, st.err = threeline.FitPoints(id, xs, lows, highs, a.cfg.ThreeLine)
	st.fitted = true
	a.stats.TLRefits++
}

func pointsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !stats.ExactEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// ThreeLine returns the current 3-line fit for one household, or the
// fit error (e.g. threeline.ErrInsufficientData while the household's
// temperature coverage is still thin).
func (a *Analytics) ThreeLine(id timeseries.ID) (*threeline.Result, error) {
	st := a.tl[id]
	if st == nil {
		return nil, threeline.ErrInsufficientData
	}
	a.refreshThreeLine(id, st)
	return st.res, st.err
}

// ThreeLines returns the current fits for every household that has one,
// in ascending ID order, refreshing stale households along the way.
// Households whose data is still insufficient are skipped.
func (a *Analytics) ThreeLines() []*threeline.Result {
	out := make([]*threeline.Result, 0, len(a.ids))
	for _, id := range a.ids {
		st := a.tl[id]
		if st == nil {
			continue
		}
		a.refreshThreeLine(id, st)
		if st.err == nil && st.res != nil {
			out = append(out, st.res)
		}
	}
	return out
}
