package incr

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/similarity"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// genDataset builds the deterministic ground-truth dataset the oracle
// compares against.
func genDataset(t *testing.T, consumers, days int) *timeseries.Dataset {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// readingsForHour flattens one absolute hour of the dataset into a batch.
func readingsForHour(ds *timeseries.Dataset, hour int) []core.Reading {
	batch := make([]core.Reading, 0, len(ds.Series))
	for _, s := range ds.Series {
		batch = append(batch, core.Reading{
			ID: s.ID, Hour: hour,
			Consumption: s.Readings[hour],
			Temperature: ds.Temperature.Values[hour],
		})
	}
	return batch
}

// prefix returns the dataset truncated to the first `hours` hours.
func prefix(ds *timeseries.Dataset, hours int) *timeseries.Dataset {
	out := &timeseries.Dataset{
		Temperature: &timeseries.Temperature{Values: ds.Temperature.Values[:hours]},
	}
	for _, s := range ds.Series {
		out.Series = append(out.Series, &timeseries.Series{ID: s.ID, Readings: s.Readings[:hours]})
	}
	return out
}

// oracleCheck compares every maintained analytic against a full
// recompute over the first `hours` hours of the dataset.
func oracleCheck(t *testing.T, a *Analytics, ds *timeseries.Dataset, hours int) {
	t.Helper()
	pfx := prefix(ds, hours)

	// Task 1: histogram — bit-identical range and counts.
	want, err := histogram.ComputeAll(pfx)
	if err != nil {
		t.Fatal(err)
	}
	got := a.Histograms()
	if len(got) != len(want) {
		t.Fatalf("hour %d: %d histograms, want %d", hours, len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.ID != w.ID {
			t.Fatalf("hour %d: histogram %d is for %d, want %d", hours, i, g.ID, w.ID)
		}
		if !stats.ExactEqual(g.Histogram.Min, w.Histogram.Min) || !stats.ExactEqual(g.Histogram.Max, w.Histogram.Max) {
			t.Fatalf("hour %d: household %d: range [%v, %v], want [%v, %v]",
				hours, w.ID, g.Histogram.Min, g.Histogram.Max, w.Histogram.Min, w.Histogram.Max)
		}
		for b, c := range w.Histogram.Counts {
			if g.Histogram.Counts[b] != c {
				t.Fatalf("hour %d: household %d bucket %d: %d, want %d",
					hours, w.ID, b, g.Histogram.Counts[b], c)
			}
		}
	}

	// Task 2: 3-line — identical-input refit, 1e-9 tolerance.
	for _, s := range pfx.Series {
		wantTL, wantErr := threeline.Compute(s, pfx.Temperature)
		gotTL, gotErr := a.ThreeLine(s.ID)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("hour %d: household %d: threeline err %v vs %v", hours, s.ID, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		for _, pair := range [][2]float64{
			{gotTL.HeatingGradient, wantTL.HeatingGradient},
			{gotTL.CoolingGradient, wantTL.CoolingGradient},
			{gotTL.BaseLoad, wantTL.BaseLoad},
			{gotTL.High.Break1, wantTL.High.Break1},
			{gotTL.High.Break2, wantTL.High.Break2},
			{gotTL.Low.Break1, wantTL.Low.Break1},
			{gotTL.Low.Break2, wantTL.Low.Break2},
		} {
			if !approxOrBothInf(pair[0], pair[1]) {
				t.Fatalf("hour %d: household %d: threeline %v, want %v (%+v vs %+v)",
					hours, s.ID, pair[0], pair[1], gotTL, wantTL)
			}
		}
	}

	// Task 3: PAR — sliding-window refit vs from-scratch fit of the
	// same window, 1e-9 tolerance.
	for _, s := range pfx.Series {
		start, end, ok := a.PARWindow(s.ID)
		if !ok {
			continue
		}
		win := &timeseries.Series{ID: s.ID, Readings: s.Readings[start:end]}
		temp := &timeseries.Temperature{Values: pfx.Temperature.Values[start:end]}
		wantPAR, err := par.ComputeOrder(win, temp, par.DefaultOrder)
		if err != nil {
			t.Fatal(err)
		}
		var gotPAR *par.Result
		for _, r := range a.Profiles() {
			if r.ID == s.ID {
				gotPAR = r
			}
		}
		if gotPAR == nil {
			t.Fatalf("hour %d: household %d: PAR window reported but no profile", hours, s.ID)
		}
		for h := 0; h < timeseries.HoursPerDay; h++ {
			if !stats.ApproxEqual(gotPAR.Profile[h], wantPAR.Profile[h], stats.DefaultTol) {
				t.Fatalf("hour %d: household %d PAR profile[%d]: %v, want %v",
					hours, s.ID, h, gotPAR.Profile[h], wantPAR.Profile[h])
			}
		}
	}

	// Task 4: top-k — bit-identical match lists.
	wantTK, err := similarity.ComputeNaive(pfx, similarity.DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	gotTK, err := a.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTK) != len(wantTK) {
		t.Fatalf("hour %d: %d topk rows, want %d", hours, len(gotTK), len(wantTK))
	}
	for i, w := range wantTK {
		g := gotTK[i]
		if g.ID != w.ID {
			t.Fatalf("hour %d: topk row %d is for %d, want %d", hours, i, g.ID, w.ID)
		}
		if len(g.Matches) != len(w.Matches) {
			t.Fatalf("hour %d: household %d: %d matches, want %d", hours, w.ID, len(g.Matches), len(w.Matches))
		}
		for m, wm := range w.Matches {
			gm := g.Matches[m]
			if gm.ID != wm.ID || !stats.ExactEqual(gm.Score, wm.Score) {
				t.Fatalf("hour %d: household %d match %d: (%d, %v), want (%d, %v)",
					hours, w.ID, m, gm.ID, gm.Score, wm.ID, wm.Score)
			}
		}
	}
}

// approxOrBothInf treats equal infinities (degenerate 3-line break
// points) as equal.
func approxOrBothInf(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) || math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	return stats.ApproxEqual(a, b, stats.DefaultTol)
}

// TestOracleHourlyBatches streams the dataset one hour at a time and
// checks all four analytics at every completed day.
func TestOracleHourlyBatches(t *testing.T) {
	const days = 12
	ds := genDataset(t, 4, days)
	a := New(Config{WindowDays: 9})
	total := days * timeseries.HoursPerDay
	for h := 0; h < total; h++ {
		if err := a.Consume(readingsForHour(ds, h)); err != nil {
			t.Fatal(err)
		}
		if (h+1)%timeseries.HoursPerDay == 0 && (h+1)/timeseries.HoursPerDay >= 2 {
			oracleCheck(t, a, ds, h+1)
		}
	}
	st := a.Stats()
	if st.Readings != int64(4*total) {
		t.Errorf("readings = %d, want %d", st.Readings, 4*total)
	}
	if st.HistDeltas == 0 || st.HistRebuilds == 0 {
		t.Errorf("histogram stats: deltas %d rebuilds %d — both paths should fire", st.HistDeltas, st.HistRebuilds)
	}
	if st.PARRefits == 0 {
		t.Error("PAR never refit")
	}
	if st.PairsReused == 0 {
		// Every day-boundary TopK dirties all households; reuse shows up
		// in the no-change double-call below.
		if _, err := a.TopK(); err != nil {
			t.Fatal(err)
		}
		if a.Stats().PairsReused == 0 {
			t.Error("topk never reused a cached pair")
		}
	}
}

// TestOracleRandomInterleavings delivers the stream in deterministic
// pseudo-random batch shapes — ragged per-household progress, split
// batches, and duplicated redelivery — and checks the oracle at
// aligned points.
func TestOracleRandomInterleavings(t *testing.T) {
	const days = 10
	ds := genDataset(t, 3, days)
	rng := rand.New(rand.NewSource(42))
	a := New(Config{WindowDays: 8})
	total := days * timeseries.HoursPerDay

	// next[i] is how many hours of series i have been delivered.
	next := make([]int, len(ds.Series))
	aligned := func() int {
		m := next[0]
		for _, n := range next[1:] {
			if n < m {
				m = n
			}
		}
		return m
	}
	var last []core.Reading
	for aligned() < total {
		// Pick a household and deliver a random run of its hours, never
		// letting it outrun the temperature column contract (a household
		// may lead, but hours must stay contiguous per household and the
		// shared temp column only extends at the global frontier).
		i := rng.Intn(len(ds.Series))
		run := 1 + rng.Intn(30)
		batch := make([]core.Reading, 0, run)
		s := ds.Series[i]
		for r := 0; r < run && next[i] < total; r++ {
			h := next[i]
			batch = append(batch, core.Reading{
				ID: s.ID, Hour: h,
				Consumption: s.Readings[h],
				Temperature: ds.Temperature.Values[h],
			})
			next[i]++
		}
		if len(batch) == 0 {
			continue
		}
		if err := a.Consume(batch); err != nil {
			t.Fatal(err)
		}
		// Deterministic at-least-once delivery: every third batch is
		// redelivered, sometimes twice.
		if rng.Intn(3) == 0 {
			if err := a.Consume(batch); err != nil {
				t.Fatalf("redelivery: %v", err)
			}
		}
		if last != nil && rng.Intn(4) == 0 {
			if err := a.Consume(last); err != nil {
				t.Fatalf("stale redelivery: %v", err)
			}
		}
		last = batch
	}
	oracleCheck(t, a, ds, total)
	if dup := a.Stats().Duplicates; dup == 0 {
		t.Error("no duplicates recorded despite redelivery")
	}
}

// TestOracleFaultInjectedRetries drives Consume through a delivery loop
// that deterministically aborts mid-batch (a gap reading planted at a
// known position) and then retries the full batch, proving the
// maintainers absorb partially applied batches exactly once.
func TestOracleFaultInjectedRetries(t *testing.T) {
	const days = 9
	ds := genDataset(t, 3, days)
	a := New(Config{WindowDays: 8})
	total := days * timeseries.HoursPerDay
	for h := 0; h < total; h++ {
		batch := readingsForHour(ds, h)
		if h%5 == 2 {
			// Inject a gap in the middle of the batch: readings before it
			// apply, the batch errors, and the redelivery must complete
			// the rest exactly once.
			bad := append([]core.Reading{}, batch...)
			bad[1].Hour = h + 7
			err := a.Consume(bad)
			if err == nil || !strings.Contains(err.Error(), "gap") {
				t.Fatalf("hour %d: injected gap not detected: %v", h, err)
			}
		}
		if err := a.Consume(batch); err != nil {
			t.Fatal(err)
		}
	}
	oracleCheck(t, a, ds, total)
}

// TestThreeLineSkipsWhenPointsUnchanged checks the refit trigger: a
// reading landing in a bin below the population threshold leaves the
// percentile point set — and therefore the fit — untouched.
func TestThreeLineSkipsWhenPointsUnchanged(t *testing.T) {
	a := New(Config{})
	// One dense bin (well above MinBinPoints): a single percentile
	// point, not enough for any fit.
	batch := make([]core.Reading, 0, 8)
	for i := 0; i < 8; i++ {
		batch = append(batch, core.Reading{
			ID: 1, Hour: i, Consumption: 1 + float64(i)*0.1, Temperature: 5.4,
		})
	}
	if err := a.Consume(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ThreeLine(1); err == nil || !strings.Contains(err.Error(), "insufficient") {
		t.Fatalf("one bin: err = %v", err)
	}
	refits := a.Stats().TLRefits
	// A reading in a brand-new bin with only one value stays below
	// MinBinPoints: the point set cannot change.
	if err := a.Consume([]core.Reading{{ID: 1, Hour: 8, Consumption: 3, Temperature: 30.5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ThreeLine(1); err == nil || !strings.Contains(err.Error(), "insufficient") {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.TLRefits != refits {
		t.Errorf("refits went %d -> %d for a point-set-preserving append", refits, st.TLRefits)
	}
	if st.TLSkips == 0 {
		t.Error("no skip recorded")
	}
}

// TestConsumeContractErrors exercises the validation paths.
func TestConsumeContractErrors(t *testing.T) {
	a := New(Config{})
	if err := a.Consume([]core.Reading{{ID: 1, Hour: -1}}); err == nil {
		t.Error("negative hour: want error")
	}
	if err := a.Consume([]core.Reading{{ID: 0, Hour: 0}}); err == nil {
		t.Error("zero id: want error")
	}
	if err := a.Consume([]core.Reading{{ID: 1, Hour: 3}}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("gap: err = %v", err)
	}
	if _, err := a.TopK(); err != similarity.ErrTooFew {
		t.Errorf("topk with no data: err = %v", err)
	}
}
