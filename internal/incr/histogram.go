package incr

import (
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Incremental histogram maintenance (task 1). The benchmark histogram
// is equi-width over each household's own [min, max], so a new reading
// inside the observed range lands in a fixed bucket grid: one O(1)
// Add. A reading outside the range moves the bucket edges for every
// previously counted value, so the household rebuilds from its
// mirrored series — exactly what a full recompute would produce, since
// stats.NewHistogram derives the same range from the same values and
// both paths share stats.Histogram.Bucket. Rebuilds decay quickly in
// practice: the observed range widens monotonically, so late readings
// almost always fall inside it.

type histState struct {
	h *stats.Histogram
}

// applyHist folds one fresh reading (already mirrored into a.vals)
// into the household's histogram.
func (a *Analytics) applyHist(id timeseries.ID, v float64) error {
	st := a.hist[id]
	if st == nil {
		st = &histState{}
		a.hist[id] = st
	}
	if st.h != nil && v >= st.h.Min && v <= st.h.Max {
		st.h.Add(v)
		a.stats.HistDeltas++
		return nil
	}
	h, err := stats.NewHistogram(a.vals[id], a.cfg.Buckets)
	if err != nil {
		return err
	}
	st.h = h
	a.stats.HistRebuilds++
	return nil
}

// Histograms returns the current per-household histograms in ascending
// ID order. The returned histograms are the live maintained state; do
// not mutate them.
func (a *Analytics) Histograms() []*histogram.Result {
	out := make([]*histogram.Result, 0, len(a.ids))
	for _, id := range a.ids {
		st := a.hist[id]
		if st == nil || st.h == nil {
			continue
		}
		out = append(out, &histogram.Result{ID: id, Histogram: st.h})
	}
	return out
}
