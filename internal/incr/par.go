package incr

import (
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Incremental PAR maintenance (task 3). The PAR fit regresses each
// hour-of-day across days, so partial days cannot contribute; the
// natural increment is one completed day. Each household refits over a
// sliding window of its most recent WindowDays days whenever it
// completes a day — bounding refit cost by the window length instead
// of the ever-growing history, which is what makes per-day refits
// sustainable under continuous ingestion. The refit input is the exact
// window slice of the mirrored series and temperature column, so the
// result equals a from-scratch par.ComputeOrder over that window.

type parState struct {
	res *par.Result
	// windowStart and windowEnd are the absolute hour range the last
	// refit was fitted over.
	windowStart, windowEnd int
}

// minPARDays is the shortest window the regression accepts for order
// p: it needs more observations (days - p) than regressors (p + 1).
func minPARDays(p int) int { return 2*p + 2 }

// applyPAR refits the household's sliding window when a fresh reading
// completes a day.
func (a *Analytics) applyPAR(id timeseries.ID) error {
	n := len(a.vals[id])
	if n == 0 || n%timeseries.HoursPerDay != 0 {
		return nil
	}
	days := n / timeseries.HoursPerDay
	if days < minPARDays(a.cfg.Order) {
		return nil
	}
	wd := a.cfg.WindowDays
	if wd > days {
		wd = days
	}
	start := (days - wd) * timeseries.HoursPerDay
	st := a.parSt[id]
	if st == nil {
		st = &parState{}
		a.parSt[id] = st
	}
	s := &timeseries.Series{ID: id, Readings: a.vals[id][start:n]}
	temp := &timeseries.Temperature{Values: a.temp[start:n]}
	res, err := par.ComputeOrder(s, temp, a.cfg.Order)
	if err != nil {
		return err
	}
	st.res = res
	st.windowStart, st.windowEnd = start, n
	a.stats.PARRefits++
	return nil
}

// Profiles returns the current sliding-window PAR results in ascending
// ID order. Households that have not yet completed enough days are
// skipped.
func (a *Analytics) Profiles() []*par.Result {
	out := make([]*par.Result, 0, len(a.ids))
	for _, id := range a.ids {
		st := a.parSt[id]
		if st == nil || st.res == nil {
			continue
		}
		out = append(out, st.res)
	}
	return out
}

// PARWindow reports the absolute hour range [start, end) the
// household's current PAR result was fitted over, for oracle
// verification. ok is false before the first refit.
func (a *Analytics) PARWindow(id timeseries.ID) (start, end int, ok bool) {
	st := a.parSt[id]
	if st == nil || st.res == nil {
		return 0, 0, false
	}
	return st.windowStart, st.windowEnd, true
}
