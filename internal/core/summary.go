package core

import "github.com/smartmeter/smartbench/internal/timeseries"

// BlockStats summarizes one stored block (a contiguous row range of a
// single consumer's series) without decoding it. Min and Max are
// first-attainer extrema over the block's non-NaN values under IEEE <
// and > — the same scan stats.MinMax performs — so for a NaN-free
// series, folding block stats in order reproduces the full-series scan
// bit for bit. Sum and SumSq accumulate the non-NaN values in block
// order. When the block holds no non-NaN values Min and Max are NaN.
type BlockStats struct {
	// Start is the row offset of the block within the series.
	Start int
	// Count is the number of rows in the block.
	Count int
	// NaNs is the number of NaN readings in the block. Compressed-domain
	// fast paths must decode any block with NaNs > 0 (or fall back
	// entirely) to preserve NaN-propagation semantics.
	NaNs int
	Min  float64
	Max  float64
	Sum  float64
	SumSq float64
}

// SummarySource is implemented by engines whose storage keeps per-block
// statistics alongside the compressed payloads. The exec layer uses it
// for compressed-domain fast paths: kernels that only need bucket
// counts or sums can consume block headers and decode raw floats only
// for the blocks where summaries are not enough. Wrappers that perturb
// data (fault injectors) must NOT forward this interface — the
// summaries describe the stored bytes, not the perturbed stream.
type SummarySource interface {
	// NewSummaryCursor returns a cursor over per-consumer block
	// summaries in ascending household-ID order. It is independent of
	// any row cursors: reading summaries does not consume or disturb
	// NewCursor/NewCursors streams.
	NewSummaryCursor() (SummaryCursor, error)
}

// SummaryCursor walks consumers in ascending ID order, yielding block
// headers, and can decode any block of the current consumer on demand.
type SummaryCursor interface {
	// NextSummary returns the next consumer's ID and its block stats in
	// row order. The returned slice is only valid until the next call.
	// It returns io.EOF after the last consumer.
	NextSummary() (timeseries.ID, []BlockStats, error)
	// DecodeBlock decodes block b (an index into the slice returned by
	// the latest NextSummary) of the current consumer into dst, which
	// must hold at least the block's Count values. The decoded floats
	// are bit-identical to what the row cursors produce.
	DecodeBlock(b int, dst []float64) error
	// Close releases the cursor. It is idempotent.
	Close() error
}
