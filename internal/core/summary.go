package core

import "github.com/smartmeter/smartbench/internal/timeseries"

// BlockStats summarizes one stored block (a contiguous row range of a
// single consumer's series) without decoding it. Min and Max are
// first-attainer extrema over the block's non-NaN values under IEEE <
// and > — the same scan stats.MinMax performs — so for a NaN-free
// series, folding block stats in order reproduces the full-series scan
// bit for bit. Sum and SumSq accumulate the non-NaN values in block
// order. When the block holds no non-NaN values Min and Max are NaN.
type BlockStats struct {
	// Start is the row offset of the block within the series.
	Start int
	// Count is the number of rows in the block.
	Count int
	// NaNs is the number of NaN readings in the block. Compressed-domain
	// fast paths must decode any block with NaNs > 0 (or fall back
	// entirely) to preserve NaN-propagation semantics.
	NaNs int
	Min  float64
	Max  float64
	Sum  float64
	SumSq float64
	// Flags carries the block-structure facts recorded at encode time.
	Flags BlockFlags
}

// BlockFlags describe structural properties of a stored block that
// compressed-domain kernels exploit. They are facts about the stored
// bit patterns, set by the encoder, never inferred at read time.
type BlockFlags uint32

const (
	// BlockHourLanes: the block stores per-hour sum lanes (and, when
	// BlockHourPeriodic, a 24-value pattern) retrievable via
	// SummaryCursor.HourLanes. Never set on a block with NaNs.
	BlockHourLanes BlockFlags = 1 << iota
	// BlockConstant: every value in the block shares one bit pattern,
	// equal to the summary Min — the block reconstructs as a fill.
	BlockConstant
	// BlockHourPeriodic: the block is day-aligned and each hour-of-day
	// holds one bit pattern — the block reconstructs by tiling the
	// stored 24-value pattern.
	BlockHourPeriodic
)

// HourLanes is the per-hour reduction of one block on the implicit
// hourly grid. Sums accumulate in row order with first-assignment
// semantics (a lane holding one value carries its exact bit pattern);
// Counts are the lane populations; Pattern is the 24-value tile of a
// BlockHourPeriodic block and nil/unused otherwise.
type HourLanes struct {
	Sums    [24]float64
	Counts  [24]int32
	Pattern [24]float64
}

// SummarySource is implemented by engines whose storage keeps per-block
// statistics alongside the compressed payloads. The exec layer uses it
// for compressed-domain fast paths: kernels that only need bucket
// counts or sums can consume block headers and decode raw floats only
// for the blocks where summaries are not enough. Wrappers that perturb
// data (fault injectors) must NOT forward this interface — the
// summaries describe the stored bytes, not the perturbed stream.
type SummarySource interface {
	// NewSummaryCursor returns a cursor over per-consumer block
	// summaries in ascending household-ID order. It is independent of
	// any row cursors: reading summaries does not consume or disturb
	// NewCursor/NewCursors streams.
	NewSummaryCursor() (SummaryCursor, error)
}

// SummaryCursor walks consumers in ascending ID order, yielding block
// headers, and can decode any block of the current consumer on demand.
type SummaryCursor interface {
	// NextSummary returns the next consumer's ID and its block stats in
	// row order. The returned slice is only valid until the next call.
	// It returns io.EOF after the last consumer.
	NextSummary() (timeseries.ID, []BlockStats, error)
	// DecodeBlock decodes block b (an index into the slice returned by
	// the latest NextSummary) of the current consumer into dst, which
	// must hold at least the block's Count values. The decoded floats
	// are bit-identical to what the row cursors produce.
	DecodeBlock(b int, dst []float64) error
	// HourLanes loads the per-hour lanes of block b of the current
	// consumer into dst and reports whether the block stores them
	// (i.e. its stats carry BlockHourLanes). When false, dst is left
	// unspecified and the caller must decode instead.
	HourLanes(b int, dst *HourLanes) (bool, error)
	// Close releases the cursor. It is idempotent.
	Close() error
}
