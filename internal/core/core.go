// Package core defines the smart meter analytics benchmark itself: the
// four analysis tasks (paper §3), the contract every candidate platform
// ("engine") implements, and the capability matrix the paper reports as
// Table 1.
//
// An engine models one of the paper's five platforms. The benchmark
// driver uses the same protocol the paper describes:
//
//	cold start:  NewEngine -> Load(source) -> Run(spec)
//	warm start:  ... -> Run(spec) again with data resident in memory
//
// Load ingests raw text files into the engine's native storage (heap
// pages, columnar segments, or nothing at all for the file-based
// engine); Run executes one task against that storage.
package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/sched"
	"github.com/smartmeter/smartbench/internal/similarity"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Task identifies one of the four benchmark tasks.
type Task int

const (
	// TaskHistogram is the per-consumer consumption histogram (§3.1).
	TaskHistogram Task = iota
	// TaskThreeLine is the 3-line thermal sensitivity model (§3.2).
	TaskThreeLine
	// TaskPAR is the periodic auto-regression daily profile (§3.3).
	TaskPAR
	// TaskSimilarity is the top-k cosine similarity search (§3.4).
	TaskSimilarity
)

// Tasks lists all benchmark tasks in paper order.
var Tasks = []Task{TaskHistogram, TaskThreeLine, TaskPAR, TaskSimilarity}

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case TaskHistogram:
		return "histogram"
	case TaskThreeLine:
		return "3-line"
	case TaskPAR:
		return "PAR"
	case TaskSimilarity:
		return "similarity"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// PrefetchMode selects how the execution pipeline drives extraction.
type PrefetchMode int

const (
	// PrefetchAuto (the zero value) lets the pipeline overlap extraction
	// with compute whenever the engine exposes disjoint partition
	// cursors (PartitionedSource), the task streams per-consumer, and
	// more than one worker is in play; otherwise extraction stays
	// serial.
	PrefetchAuto PrefetchMode = iota
	// PrefetchOff forces the serial single-cursor extract path — the
	// A/B baseline for the overlapped pipeline (scripts/bench.sh,
	// BENCH_extract.json) and the `smbench -prefetch=off` escape hatch.
	PrefetchOff
)

// Spec parameterizes a task execution.
type Spec struct {
	Task Task
	// Buckets is the histogram bucket count (default 10).
	Buckets int
	// K is the similarity-search result size (default 10).
	K int
	// Order is the PAR auto-regressive order (default 3).
	Order int
	// Workers is the intra-engine parallelism degree; 0 or 1 means
	// single-threaded (paper §5.3.3 vs §5.3.4).
	Workers int
	// Prefetch gates the overlapped extraction path (PrefetchAuto
	// overlaps when possible; PrefetchOff pins the serial extract).
	// Either way results are bit-identical to RunReference.
	Prefetch PrefetchMode
	// FailPolicy selects per-consumer failure containment (see the
	// FailPolicy constants). The zero value FailFast keeps the
	// pre-containment semantics: any error aborts the run.
	FailPolicy FailPolicy
}

// WithDefaults returns the spec with unset parameters filled in.
func (s Spec) WithDefaults() Spec {
	if s.Buckets <= 0 {
		s.Buckets = histogram.DefaultBuckets
	}
	if s.K <= 0 {
		s.K = similarity.DefaultK
	}
	if s.Order <= 0 {
		s.Order = par.DefaultOrder
	}
	if s.Workers <= 0 {
		s.Workers = 1
	}
	return s
}

// Results carries the output of one task execution; exactly one result
// field is populated, matching the Spec's Task.
type Results struct {
	Task       Task
	Histograms []*histogram.Result
	ThreeLines []*threeline.Result
	Profiles   []*par.Result
	Similar    []*similarity.Result

	// Phases carries the execution pipeline's per-stage instrumentation
	// (extract/compute/emit wall clock and volume, plus the 3-line
	// T1/T2/T3 sub-phases). It is populated by internal/exec — i.e. by
	// every engine Run — and nil for results produced by the reference
	// implementations.
	Phases *Phases

	// Failed lists the consumers quarantined under FailPolicy
	// Quarantine or Repair, in ascending household-ID order. It is
	// always empty under FailFast (the first failure aborts the run
	// instead).
	Failed []ConsumerFailure
}

// Count returns the number of per-consumer results produced.
func (r *Results) Count() int {
	switch r.Task {
	case TaskHistogram:
		return len(r.Histograms)
	case TaskThreeLine:
		return len(r.ThreeLines)
	case TaskPAR:
		return len(r.Profiles)
	case TaskSimilarity:
		return len(r.Similar)
	default:
		return 0
	}
}

// LoadStats describes a completed Load.
type LoadStats struct {
	// Consumers is the number of series ingested.
	Consumers int
	// Readings is the total number of readings ingested.
	Readings int64
	// StorageBytes is the engine-native storage footprint, when the
	// engine materializes one (0 for engines that read raw files).
	StorageBytes int64
	// RawBytes is the uncompressed size of the reading matrix
	// (consumers × series length × 8 bytes). Engines that compress
	// report both so extract cost is attributable to decode;
	// StorageBytes/RawBytes is the storage compression ratio.
	RawBytes int64
}

// Engine is the contract each platform analogue implements. Engines are
// not safe for concurrent use by multiple goroutines; intra-task
// parallelism is requested via Spec.Workers.
type Engine interface {
	// Name returns the platform name used in reports.
	Name() string
	// Capabilities reports which statistical functions the platform has
	// built in (Table 1).
	Capabilities() Capabilities
	// Load ingests a raw data source into engine-native storage. It
	// replaces any previously loaded data.
	Load(src *meterdata.Source) (*LoadStats, error)
	// NewCursor opens a streaming cursor over the loaded data in
	// ascending household-ID order, using the engine's native extraction
	// path (warm engines return an in-memory DatasetCursor). It returns
	// an error wrapping ErrNotLoaded when no data has been loaded.
	NewCursor() (Cursor, error)
	// Temperature returns the outdoor temperature series aligned with
	// the loaded consumption data, or an error wrapping ErrNotLoaded.
	Temperature() (*timeseries.Temperature, error)
	// Run executes one benchmark task against the loaded data. Engines
	// implement it by handing their cursor to the shared execution
	// pipeline (internal/exec), which populates Results.Phases. It is
	// RunContext with a background context.
	Run(spec Spec) (*Results, error)
	// RunContext is Run under a context: cancelling the context (or
	// letting its deadline pass) stops the run promptly — including
	// mid-extraction — with all pipeline goroutines joined and cursors
	// closed before it returns.
	RunContext(ctx context.Context, spec Spec) (*Results, error)
	// Release drops all in-memory state, returning the engine to a cold
	// state (native on-disk storage, if any, is kept).
	Release() error
}

// ErrNotLoaded is returned by Run when no data has been loaded.
var ErrNotLoaded = errors.New("core: no data loaded")

// FunctionSupport says how a platform obtains one statistical function,
// mirroring the paper's Table 1 ("yes" / "third party" / "no").
type FunctionSupport int

const (
	// SupportNone means the benchmark implementation had to hand-write
	// the operator inside the platform.
	SupportNone FunctionSupport = iota
	// SupportThirdParty means an external library supplies it.
	SupportThirdParty
	// SupportBuiltin means the platform ships the function natively.
	SupportBuiltin
)

// String implements fmt.Stringer using the paper's Table 1 vocabulary.
func (f FunctionSupport) String() string {
	switch f {
	case SupportBuiltin:
		return "yes"
	case SupportThirdParty:
		return "third party"
	case SupportNone:
		return "no"
	default:
		return fmt.Sprintf("FunctionSupport(%d)", int(f))
	}
}

// Capabilities is one platform's row set of Table 1.
type Capabilities struct {
	Histogram        FunctionSupport
	Quantiles        FunctionSupport
	Regression       FunctionSupport
	CosineSimilarity FunctionSupport
}

// RunReference executes a spec against an in-memory dataset using the
// reference (library-level) implementations. Engines delegate to this
// once they have materialized the dataset, and tests use it as the
// correctness oracle for every engine.
func RunReference(d *timeseries.Dataset, spec Spec) (*Results, error) {
	spec = spec.WithDefaults()
	out := &Results{Task: spec.Task}
	switch spec.Task {
	case TaskHistogram:
		for _, s := range d.Series {
			r, err := histogram.ComputeBuckets(s, spec.Buckets)
			if err != nil {
				return nil, err
			}
			out.Histograms = append(out.Histograms, r)
		}
	case TaskThreeLine:
		for _, s := range d.Series {
			r, err := threeline.Compute(s, d.Temperature)
			if err != nil {
				return nil, err
			}
			out.ThreeLines = append(out.ThreeLines, r)
		}
	case TaskPAR:
		for _, s := range d.Series {
			r, err := par.ComputeOrder(s, d.Temperature, spec.Order)
			if err != nil {
				return nil, err
			}
			out.Profiles = append(out.Profiles, r)
		}
	case TaskSimilarity:
		rs, err := similarity.ComputeParallel(d, spec.K, spec.Workers)
		if err != nil {
			return nil, err
		}
		out.Similar = rs
	default:
		return nil, fmt.Errorf("core: unknown task %v", spec.Task)
	}
	return out, nil
}

// runParallelBlock is the number of consumers a RunParallel worker
// claims per scheduler pull. One consumer per claim balances best: a
// single PAR fit dwarfs the cost of an atomic counter increment.
const runParallelBlock = 1

// RunParallel is RunReference with the per-consumer tasks dynamically
// scheduled over spec.Workers goroutines (the similarity task already
// honours Workers internally): workers pull consumer blocks off a
// shared counter (internal/sched) rather than owning static ranges, so
// an uneven split cannot strand a straggler. Result order matches
// d.Series order. Cancelling ctx stops further claims; the first
// worker to observe the cancellation returns ctx's error.
//
// Engines no longer call this — their Run goes through the cursor
// pipeline in internal/exec — but it is kept as the pre-pipeline
// harness baseline: tests pin parallel output against it, and the
// pipeline-vs-legacy benchmark (scripts/bench.sh, BENCH_pipeline.json)
// measures the pipeline's overhead relative to it.
func RunParallel(ctx context.Context, d *timeseries.Dataset, spec Spec) (*Results, error) {
	spec = spec.WithDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Workers <= 1 || spec.Task == TaskSimilarity {
		return RunReference(d, spec)
	}
	n := len(d.Series)
	out := &Results{Task: spec.Task}

	switch spec.Task {
	case TaskHistogram:
		out.Histograms = make([]*histogram.Result, n)
	case TaskThreeLine:
		out.ThreeLines = make([]*threeline.Result, n)
	case TaskPAR:
		out.Profiles = make([]*par.Result, n)
	default:
		return nil, fmt.Errorf("core: unknown task %v", spec.Task)
	}

	if err := sched.Run(n, runParallelBlock, spec.Workers, func(_, lo, hi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			s := d.Series[i]
			switch spec.Task {
			case TaskHistogram:
				r, err := histogram.ComputeBuckets(s, spec.Buckets)
				if err != nil {
					return err
				}
				out.Histograms[i] = r
			case TaskThreeLine:
				r, err := threeline.Compute(s, d.Temperature)
				if err != nil {
					return err
				}
				out.ThreeLines[i] = r
			case TaskPAR:
				r, err := par.ComputeOrder(s, d.Temperature, spec.Order)
				if err != nil {
					return err
				}
				out.Profiles[i] = r
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// DeltaAppender is the optional engine interface for the paper's
// future-work update workload (§3): appending new hourly readings
// (e.g. a day's worth) to every stored series in one bulk delta.
// Read-optimized engines may pay a high price here — measuring that
// price is the point of the "updates" experiment. The live-ingestion
// path is the separate Appender contract (append.go).
type DeltaAppender interface {
	// AppendDelta extends every stored household with the delta
	// dataset's readings; the delta must cover exactly the stored
	// households and include the matching new temperature values.
	AppendDelta(delta *timeseries.Dataset) error
}
