package core

import "github.com/smartmeter/smartbench/internal/timeseries"

// Live ingestion contract: instead of loading a finished dataset and
// then running tasks ("load once, then run"), an engine implementing
// Appender accepts batches of readings forever and serves read-isolated
// snapshots at any time ("append forever, query any time"). The
// incremental maintainers in internal/incr and the stream detectors are
// fed from the same committed batches (see exec.Ingestor), so storage,
// alerts and analytics all observe one ordered sequence of writes.
//
// Ordering contract. Within one household, readings must arrive in
// hour order with no gaps: the first reading for a household carries
// the hour right after its stored prefix (0 for a new household), and
// each subsequent reading the next hour. Re-delivering an hour the
// engine has already committed is a no-op — batches are idempotent, so
// a caller that retries a failed batch cannot double-apply the part
// that did land. Re-delivering with a gap (an hour beyond the
// household's next expected hour) is an error.
//
// Temperature contract. Reading.Temperature must equal the outdoor
// temperature for Reading.Hour: households share one temperature
// column, and the engine extends it from whichever household reaches a
// new hour first.

// Reading is one live meter measurement: household ID, the hour index
// it extends the household's series at, the consumption value, and the
// outdoor temperature for that hour. It is the one reading type shared
// by storage appends, the stream detectors (stream.Event is an alias)
// and the incremental maintainers.
type Reading struct {
	ID          timeseries.ID
	Hour        int
	Consumption float64
	Temperature float64
}

// Epoch identifies a snapshot's position in an engine's append
// sequence: the number of batches committed before the snapshot was
// taken. Epochs are monotonic within one engine instance (they restart
// at the stored state's epoch 0 after a reopen) and exist so tests and
// callers can prove isolation: a cursor obtained at epoch E never
// observes writes from any batch committed after E.
type Epoch uint64

// Appender is the live-ingestion contract. Append and Snapshot are
// safe for concurrent use with each other and with themselves —
// engines serve multiple sharded writers while snapshots are read —
// which is deliberately stronger than the base Engine contract.
type Appender interface {
	// Append commits one batch of readings atomically with respect to
	// Snapshot: a snapshot observes either none or all of a batch.
	// Batches are idempotent under the ordering contract above. On
	// error the batch may be partially applied internally, but it is
	// not committed (the epoch does not advance) and a successful
	// retry of the same batch completes it exactly once.
	Append(batch []Reading) error
	// Snapshot returns a read-isolated cursor over everything
	// committed so far — the stored base plus all appended batches —
	// in ascending household-ID order, together with the epoch it was
	// taken at. The cursor keeps serving exactly that epoch's data
	// while appends continue. Snapshot cursors also implement
	// SnapshotTemperature.
	Snapshot() (Cursor, Epoch, error)
}

// SnapshotTemperature is implemented by snapshot cursors: the
// temperature column captured at snapshot time, aligned with the
// captured series lengths even as later appends extend it.
type SnapshotTemperature interface {
	SnapshotTemp() *timeseries.Temperature
}

// ShardFor maps a household to one of n writer shards. Engines and
// callers share this one partitioning function (the stream processor's
// per-worker fan-out uses it too), so a batch pre-split by shard lands
// on disjoint engine-internal shard locks.
func ShardFor(id timeseries.ID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(uint64(id) % uint64(n))
}
