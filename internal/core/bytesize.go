package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseByteSize parses a human-readable byte size: a non-negative
// integer with an optional unit suffix — B, KB/MB/GB (decimal) or
// KiB/MiB/GiB (binary), case-insensitive. The empty string parses as
// 0. Both CLIs use it for their -membudget flags.
func ParseByteSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	units := []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1000}, {"mb", 1000 * 1000}, {"gb", 1000 * 1000 * 1000},
		{"b", 1},
	}
	lower := strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	num := lower
	for _, u := range units {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.mult
			num = strings.TrimSpace(strings.TrimSuffix(lower, u.suffix))
			break
		}
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("core: bad byte size %q (want e.g. 256MiB, 1GiB)", s)
	}
	if mult > 1 && v > (1<<62)/mult {
		return 0, fmt.Errorf("core: byte size %q overflows", s)
	}
	return v * mult, nil
}
