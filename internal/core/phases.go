package core

import "time"

// PhaseStat describes one stage of the execution pipeline for a single
// Run: how long it took and how much data moved through it.
type PhaseStat struct {
	// Wall is the stage's accumulated busy time: on the serial path the
	// stages alternate on one goroutine, so it equals elapsed wall
	// clock; under the overlapped prefetch path it is the sum of the
	// per-goroutine busy-time accumulators of the stage's extract or
	// compute goroutines, gathered after the joins. Busy sums stay
	// truthful under overlap — the stages run concurrently, so their
	// summed busy time can (and should) exceed the Run's elapsed time.
	Wall time.Duration
	// Rows is the number of consumer series the stage handled.
	Rows int64
	// Bytes approximates the payload the stage handled (8 bytes per
	// reading for decoded series).
	Bytes int64
}

// Phases is the per-stage instrumentation attached to every Results by
// the execution pipeline. The three stages mirror the paper's account of
// where engine time goes: Extract is the engine-native decode (file
// scan, tuple decode, columnar decode, cluster assembly job), Compute is
// the task kernel, and Emit is result assembly/merge.
//
// For the 3-line task the compute stage additionally records the
// paper's Figure 6 sub-phases: T1 percentile extraction, T2 segmented
// regression, T3 continuity adjustment, summed across consumers (and
// across workers when the compute stage fans out).
type Phases struct {
	Extract PhaseStat
	Compute PhaseStat
	Emit    PhaseStat

	T1Quantiles  time.Duration
	T2Regression time.Duration
	T3Adjust     time.Duration

	// SummaryBlocks and DecodedBlocks count stored blocks consumed by a
	// compressed-domain fast path: SummaryBlocks were satisfied from
	// header summaries/lanes alone, DecodedBlocks needed the full float
	// decode. Both stay zero when no fast path ran; their ratio is the
	// summary-only fraction the scale experiments report.
	SummaryBlocks int64
	DecodedBlocks int64
}

// Total returns the summed busy time of all three stages. On the
// serial path this equals the Run's elapsed time; under overlapped
// extraction it is an upper bound on it (work done concurrently counts
// once per goroutine).
func (p *Phases) Total() time.Duration {
	return p.Extract.Wall + p.Compute.Wall + p.Emit.Wall
}
