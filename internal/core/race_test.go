package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// TestRunParallelRace is the race-regression test for the RunParallel
// worker pool (core.go): many workers write disjoint result slots and
// per-worker error slots, which `go test -race` verifies while the
// reference comparison pins determinism — the fan-out must produce
// byte-identical results to the sequential path.
func TestRunParallelRace(t *testing.T) {
	ds := dataset(t, 24, 21)
	for _, task := range []Task{TaskHistogram, TaskThreeLine, TaskPAR} {
		spec := Spec{Task: task, Workers: 8, K: 3}
		ref, err := RunReference(ds, Spec{Task: task, K: 3})
		if err != nil {
			t.Fatalf("%v reference: %v", task, err)
		}
		par, err := RunParallel(context.Background(), ds, spec)
		if err != nil {
			t.Fatalf("%v parallel: %v", task, err)
		}
		if !reflect.DeepEqual(ref, par) {
			t.Errorf("%v: parallel results differ from reference", task)
		}
	}
}

// TestRunParallelConcurrentCallers runs several RunParallel invocations
// at once over one shared dataset, the shape a serving layer would
// produce; the dataset must be treated as read-only by every worker.
func TestRunParallelConcurrentCallers(t *testing.T) {
	ds := dataset(t, 12, 14)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = RunParallel(context.Background(), ds, Spec{Task: TaskHistogram, Workers: 4})
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", c, err)
		}
	}
}
