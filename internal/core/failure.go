package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// FailPolicy selects how the execution pipeline reacts when a single
// consumer's extraction or computation fails. The paper's benchmark
// assumes clean, fully materialized inputs; production meter pipelines
// do not get that luxury (missing intervals, corrupt rows, flaky
// storage), so the pipeline can contain a failure to the consumer it
// belongs to instead of aborting the whole run.
type FailPolicy int

const (
	// FailFast (the zero value) aborts the run on the first error — the
	// pre-containment semantics, and still the right default for
	// benchmark runs where a failure means the harness itself is broken.
	FailFast FailPolicy = iota
	// Quarantine skips a failing consumer: the failure is recorded on
	// Results.Failed (ID, phase, error) and every other consumer's
	// result is produced bit-identically to a run without the bad
	// series. Transient extraction errors are retried with capped
	// exponential backoff before the consumer is quarantined.
	Quarantine
	// Repair is Quarantine plus data repair: a series with missing
	// (NaN) readings is routed through the hybrid gap-filling imputer
	// (internal/impute) before computing. A series the imputer cannot
	// save (every reading missing) is demoted to quarantine.
	Repair
)

// String implements fmt.Stringer.
func (p FailPolicy) String() string {
	switch p {
	case FailFast:
		return "failfast"
	case Quarantine:
		return "quarantine"
	case Repair:
		return "repair"
	default:
		return fmt.Sprintf("FailPolicy(%d)", int(p))
	}
}

// ParseFailPolicy converts a CLI flag value to a FailPolicy.
func ParseFailPolicy(s string) (FailPolicy, error) {
	switch s {
	case "failfast":
		return FailFast, nil
	case "quarantine":
		return Quarantine, nil
	case "repair":
		return Repair, nil
	default:
		return FailFast, fmt.Errorf("core: unknown fail policy %q (want failfast, quarantine or repair)", s)
	}
}

// Phase names used in ConsumerFailure.Phase.
const (
	// PhaseExtract marks a failure while reading the consumer out of
	// engine storage.
	PhaseExtract = "extract"
	// PhaseCompute marks a failure (error or recovered panic) inside
	// the task kernel.
	PhaseCompute = "compute"
	// PhaseRepair marks a failure while imputing a gapped series under
	// FailPolicy Repair.
	PhaseRepair = "repair"
)

// ConsumerFailure records one quarantined consumer: which household,
// which pipeline phase gave up on it, and why.
type ConsumerFailure struct {
	ID    timeseries.ID
	Phase string
	Err   error
}

func (f ConsumerFailure) String() string {
	return fmt.Sprintf("consumer %d failed in %s: %v", f.ID, f.Phase, f.Err)
}

// FailedIDs returns the quarantined household IDs in Results order
// (ascending).
func (r *Results) FailedIDs() []timeseries.ID {
	ids := make([]timeseries.ID, len(r.Failed))
	for i, f := range r.Failed {
		ids[i] = f.ID
	}
	return ids
}

// ConsumerError is an error scoped to a single consumer series. It is
// the contract between cursors and the pipeline's containment layer:
//
//   - Transient == true: the read may succeed if repeated; the cursor
//     MUST NOT have advanced, so the very next Next retries the same
//     consumer. The pipeline retries with capped exponential backoff
//     and quarantines the consumer when retries are exhausted.
//   - Transient == false: the consumer is permanently unreadable; the
//     cursor MUST have advanced past it, so the next Next proceeds with
//     the following consumer.
//
// Any cursor error that is not a *ConsumerError is treated as fatal to
// the whole run under every FailPolicy (the storage layer itself is
// broken, not one series).
type ConsumerError struct {
	ID        timeseries.ID
	Transient bool
	Err       error
}

func (e *ConsumerError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("consumer %d: %s: %v", e.ID, kind, e.Err)
}

func (e *ConsumerError) Unwrap() error { return e.Err }

// AsConsumerError unwraps err to a *ConsumerError, if there is one in
// the chain.
func AsConsumerError(err error) (*ConsumerError, bool) {
	var ce *ConsumerError
	if errors.As(err, &ce) {
		return ce, true
	}
	return nil, false
}

// IsTransient reports whether err is a retryable per-consumer error.
func IsTransient(err error) bool {
	ce, ok := AsConsumerError(err)
	return ok && ce.Transient
}

// ErrMissingData classifies a series that arrived with missing (NaN)
// readings — a data-quality failure, distinct from transient I/O and
// permanent storage errors. Quarantine reports it; Repair imputes the
// gaps instead.
var ErrMissingData = errors.New("core: series has missing readings")

// PanicError wraps a panic recovered from a compute worker or decode
// goroutine, preserving the stack so the report stays debuggable.
type PanicError struct {
	Value any
	Stack []byte
}

// NewPanicError captures the current stack around a recovered value.
func NewPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}
