package core

// PartitionedSource is optionally implemented by engines whose storage
// splits into disjoint shards that can be extracted independently: the
// file engine shards its per-consumer file list (and its big-file
// reading index by row ranges), the row store shards the heap by
// contiguous household ranges (= contiguous page ranges, since tuples
// are bulk-loaded in household order), the column store by consumer
// segment groups, and the cluster engines by RDD partition / DFS split.
//
// The execution pipeline (internal/exec) uses it to overlap extraction
// with compute: one decode goroutine per partition cursor feeds a
// bounded channel of series blocks that compute workers drain.
type PartitionedSource interface {
	// NewCursors opens up to max independent cursors that jointly cover
	// the loaded dataset exactly once: partitions are pairwise disjoint
	// and the union of their household IDs equals the full cursor's ID
	// set. Each returned cursor honours the Cursor contract within its
	// partition (ascending IDs, EOF stability, Reset replay, idempotent
	// Close). Implementations may return fewer than max cursors — a
	// single cursor tells the caller to fall back to the serial path —
	// but never more, and max must be >= 1.
	//
	// The cursors may be driven concurrently, one goroutine per cursor;
	// Close on each is required regardless of how far it was drained.
	NewCursors(max int) ([]Cursor, error)
}

// PartitionRanges splits n items into at most max contiguous,
// near-equal [lo, hi) ranges. It returns fewer ranges when n < max and
// nil when n == 0 or max <= 0. Engines use it to shard ID lists, file
// lists, and consumer columns into partition cursors.
func PartitionRanges(n, max int) [][2]int {
	if n <= 0 || max <= 0 {
		return nil
	}
	parts := max
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
