package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func dataset(t *testing.T, consumers, days int) *timeseries.Dataset {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSpecWithDefaults(t *testing.T) {
	s := Spec{Task: TaskSimilarity}.WithDefaults()
	if s.Buckets != 10 || s.K != 10 || s.Order != 3 || s.Workers != 1 {
		t.Errorf("defaults = %+v", s)
	}
	s = Spec{Task: TaskPAR, Buckets: 5, K: 2, Order: 1, Workers: 8}.WithDefaults()
	if s.Buckets != 5 || s.K != 2 || s.Order != 1 || s.Workers != 8 {
		t.Errorf("explicit values overridden: %+v", s)
	}
}

func TestTaskAndSupportStrings(t *testing.T) {
	if TaskHistogram.String() != "histogram" || TaskThreeLine.String() != "3-line" ||
		TaskPAR.String() != "PAR" || TaskSimilarity.String() != "similarity" {
		t.Error("task strings")
	}
	if !strings.Contains(Task(42).String(), "42") {
		t.Error("unknown task string")
	}
	if SupportBuiltin.String() != "yes" || SupportNone.String() != "no" ||
		SupportThirdParty.String() != "third party" {
		t.Error("support strings")
	}
	if !strings.Contains(FunctionSupport(9).String(), "9") {
		t.Error("unknown support string")
	}
}

func TestRunReferenceAllTasks(t *testing.T) {
	ds := dataset(t, 4, 30)
	for _, task := range Tasks {
		r, err := RunReference(ds, Spec{Task: task, K: 2})
		if err != nil {
			t.Fatalf("%v: %v", task, err)
		}
		if r.Task != task {
			t.Errorf("%v: result task %v", task, r.Task)
		}
		if r.Count() != 4 {
			t.Errorf("%v: count = %d", task, r.Count())
		}
	}
	if _, err := RunReference(ds, Spec{Task: Task(99)}); err == nil {
		t.Error("unknown task: want error")
	}
}

func TestResultsCount(t *testing.T) {
	r := &Results{Task: Task(99)}
	if r.Count() != 0 {
		t.Error("unknown task count")
	}
}

func TestRunParallelMatchesReference(t *testing.T) {
	ds := dataset(t, 7, 30)
	for _, task := range []Task{TaskHistogram, TaskThreeLine, TaskPAR} {
		want, err := RunReference(ds, Spec{Task: task})
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunParallel(context.Background(), ds, Spec{Task: task, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != want.Count() {
			t.Fatalf("%v: count %d vs %d", task, got.Count(), want.Count())
		}
		switch task {
		case TaskHistogram:
			for i := range want.Histograms {
				if got.Histograms[i].ID != want.Histograms[i].ID {
					t.Fatalf("%v: order differs at %d", task, i)
				}
			}
		case TaskThreeLine:
			for i := range want.ThreeLines {
				if math.Abs(got.ThreeLines[i].HeatingGradient-want.ThreeLines[i].HeatingGradient) > 1e-12 {
					t.Fatalf("3-line %d differs", i)
				}
			}
		case TaskPAR:
			for i := range want.Profiles {
				if got.Profiles[i].ID != want.Profiles[i].ID {
					t.Fatalf("PAR order differs at %d", i)
				}
			}
		}
	}
	// Similarity delegates to the parallel similarity implementation.
	got, err := RunParallel(context.Background(), ds, Spec{Task: TaskSimilarity, Workers: 4, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 7 {
		t.Errorf("similarity count = %d", got.Count())
	}
	if _, err := RunParallel(context.Background(), ds, Spec{Task: Task(99), Workers: 2}); err == nil {
		t.Error("unknown task: want error")
	}
}

func TestRunParallelPropagatesErrors(t *testing.T) {
	// One empty series makes the histogram task fail in a worker.
	ds := dataset(t, 4, 10)
	ds.Series[2] = &timeseries.Series{ID: 99}
	if _, err := RunParallel(context.Background(), ds, Spec{Task: TaskHistogram, Workers: 4}); err == nil {
		t.Error("want error from worker")
	}
}
