package core

import (
	"context"
	"io"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Cursor streams consumer series one at a time out of an engine's native
// storage. It is the engine half of the shared execution pipeline
// (internal/exec): the engine owns extraction — file streaming, index
// scans, tuple decode, columnar decode, or a cluster job — and the
// pipeline owns task dispatch, parallel compute, and result assembly.
//
// Next returns io.EOF after the last series. Cursors must yield series
// in ascending household-ID order so that every engine produces the
// bit-identical result order the integration tests pin. A Cursor is not
// safe for concurrent use; the pipeline drives it from a single
// goroutine.
type Cursor interface {
	// Next returns the next consumer's series, or io.EOF when the cursor
	// is exhausted (or closed).
	Next() (*timeseries.Series, error)
	// Reset rewinds the cursor so the next Next replays the sequence
	// from the beginning, yielding identical values.
	Reset() error
	// Close releases any resources held by the cursor. Close is
	// idempotent; after Close, Next reports io.EOF.
	Close() error
}

// ContextCursor is optionally implemented by cursors that can honor
// cancellation inside Next — long index builds, per-consumer storage
// scans, cluster collect jobs. The pipeline binds its run context once
// before driving the cursor; a bound cursor returns the context's
// error from Next as soon as it observes the cancellation, leaving the
// cursor in a state where Close still releases everything.
type ContextCursor interface {
	BindContext(ctx context.Context)
}

// BindContext binds ctx to cur when the cursor supports it; cursors
// without context support are driven as before, with the pipeline
// checking the context between Next calls.
func BindContext(cur Cursor, ctx context.Context) {
	if b, ok := cur.(ContextCursor); ok {
		b.BindContext(ctx)
	}
}

// CtxErr reports the bound context's cancellation error, tolerating an
// unbound (nil) context — the state of a cursor BindContext never
// reached. Engine cursors call it at the top of Next.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Skipper is optionally implemented by cursors that can abandon the
// consumer a transient error left them positioned on (the transient
// ConsumerError contract keeps the cursor in place so Next can retry).
// The pipeline calls Skip when retries are exhausted, quarantining the
// consumer; without Skip support a persistent transient error is fatal
// because the cursor cannot make progress.
type Skipper interface {
	// Skip advances past the current (failing) consumer.
	Skip() error
}

// SizeHinter is optionally implemented by cursors that can cheaply
// estimate how many series they will yield; consumers may use the hint
// to size buffers but must not rely on it being exact.
type SizeHinter interface {
	// SizeHint returns the expected series count; ok is false when the
	// cursor cannot estimate it yet.
	SizeHint() (n int, ok bool)
}

// DatasetCursor is optionally implemented by cursors backed by a fully
// materialized in-memory dataset (warm engines). The pipeline uses it to
// run whole-dataset tasks (similarity) without re-copying series, which
// preserves the dataset's cached flat-matrix packing.
type DatasetCursor interface {
	Cursor
	// Dataset returns the backing dataset. Callers must treat it as
	// read-only.
	Dataset() *timeseries.Dataset
}

// NewDatasetCursor returns a cursor over an in-memory dataset, yielding
// ds.Series in order.
func NewDatasetCursor(ds *timeseries.Dataset) DatasetCursor {
	return &datasetCursor{ds: ds}
}

type datasetCursor struct {
	ds     *timeseries.Dataset
	ctx    context.Context
	i      int
	closed bool
}

func (c *datasetCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *datasetCursor) Next() (*timeseries.Series, error) {
	if err := CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.i >= len(c.ds.Series) {
		return nil, io.EOF
	}
	s := c.ds.Series[c.i]
	c.i++
	return s, nil
}

func (c *datasetCursor) Reset() error {
	c.i = 0
	c.closed = false
	return nil
}

func (c *datasetCursor) Close() error {
	c.closed = true
	return nil
}

func (c *datasetCursor) Dataset() *timeseries.Dataset { return c.ds }

func (c *datasetCursor) SizeHint() (int, bool) { return len(c.ds.Series), true }

// NewLazyCursor returns a cursor that materializes its series on first
// use by calling load once, then replays the buffered slice (Reset
// rewinds without re-running load). load receives the cursor's bound
// context (never nil) so long materializations — e.g. a simulated
// cluster job — can be cut short by cancellation. onClose, if non-nil,
// runs exactly once, on the first Close — engines use it to release
// resources the load pinned (e.g. cached cluster partitions).
func NewLazyCursor(load func(ctx context.Context) ([]*timeseries.Series, error), onClose func()) Cursor {
	return &lazyCursor{load: load, onClose: onClose}
}

type lazyCursor struct {
	load    func(ctx context.Context) ([]*timeseries.Series, error)
	onClose func()
	ctx     context.Context
	series  []*timeseries.Series
	loaded  bool
	i       int
	closed  bool
}

func (c *lazyCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *lazyCursor) Next() (*timeseries.Series, error) {
	if err := CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed {
		return nil, io.EOF
	}
	if !c.loaded {
		ctx := c.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		series, err := c.load(ctx)
		if err != nil {
			return nil, err
		}
		c.series, c.loaded = series, true
	}
	if c.i >= len(c.series) {
		return nil, io.EOF
	}
	s := c.series[c.i]
	c.i++
	return s, nil
}

func (c *lazyCursor) Reset() error {
	c.i = 0
	return nil
}

func (c *lazyCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.series = nil
	if c.onClose != nil {
		c.onClose()
	}
	return nil
}

func (c *lazyCursor) SizeHint() (int, bool) {
	if !c.loaded {
		return 0, false
	}
	return len(c.series), true
}
