package benchmark

import (
	"fmt"
	"path/filepath"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/engine/filestore"
	"github.com/smartmeter/smartbench/internal/engine/mapreduce"
	"github.com/smartmeter/smartbench/internal/engine/rdd"
	"github.com/smartmeter/smartbench/internal/engine/rowstore"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/stats"
)

// Table1 regenerates the paper's Table 1: which statistical functions
// each platform ships natively.
func Table1(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	cluster, err := newCluster(4)
	if err != nil {
		return nil, err
	}
	fsys, err := dfs.New(cluster)
	if err != nil {
		return nil, err
	}
	fileE, rowE, colE := singleNodeEngines(&opts, "table1")
	defer rowE.Close()
	engines := []core.Engine{fileE, rowE, colE, rdd.New(fsys), mapreduce.New(fsys)}
	rep := &Report{
		ID:      "table1",
		Title:   "Statistical functions built into the five tested platforms",
		Columns: []string{"Function", "Matlab", "MADLib", "System C", "Spark", "Hive"},
	}
	rows := []struct {
		name string
		get  func(core.Capabilities) core.FunctionSupport
	}{
		{"Histogram", func(c core.Capabilities) core.FunctionSupport { return c.Histogram }},
		{"Quantiles", func(c core.Capabilities) core.FunctionSupport { return c.Quantiles }},
		{"Regression/PAR", func(c core.Capabilities) core.FunctionSupport { return c.Regression }},
		{"Cosine similarity", func(c core.Capabilities) core.FunctionSupport { return c.CosineSimilarity }},
	}
	for _, r := range rows {
		cells := []string{r.name}
		for _, e := range engines {
			cells = append(cells, r.get(e.Capabilities()).String())
		}
		rep.AddRow(cells...)
	}
	return rep, nil
}

// singleNodeEngines returns the three single-server engines keyed by
// their report label (paper §5.3 compares Matlab, MADLib and System C).
func singleNodeEngines(opts *Options, tag string) (fileE *filestore.Engine, rowE *rowstore.Engine, colE *colstore.Engine) {
	fileE = filestore.New(filestore.WithSplitDir(filepath.Join(opts.WorkDir, tag+"-split")))
	rowE = rowstore.New(filepath.Join(opts.WorkDir, tag+"-rowstore"))
	colE = colstore.New(filepath.Join(opts.WorkDir, tag+"-colstore"),
		colstore.WithMemBudget(opts.MemBudget))
	return fileE, rowE, colE
}

// Fig4 regenerates Figure 4: data loading times, partitioned vs
// unpartitioned source, for the three single-server platforms.
func Fig4(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	srcs, err := opts.makeSources(opts.Scale.BaseConsumers, "fig4", false, true)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig4",
		Title:   fmt.Sprintf("Data loading times (%d consumers x %d days)", opts.Scale.BaseConsumers, opts.Scale.Days),
		Columns: []string{"engine", "unpartitioned", "partitioned"},
		Notes: []string{
			"expected shape: rowstore slowest; colstore fast; filestore's 'load' is just the file split",
		},
	}
	fileE, rowE, colE := singleNodeEngines(&opts, "fig4")
	defer rowE.Close()
	for _, e := range []struct {
		name string
		eng  core.Engine
	}{
		{"filestore (Matlab)", fileE},
		{"rowstore (MADLib)", rowE},
		{"colstore (System C)", colE},
	} {
		dUnpart, err := Timed(func() error { _, err := e.eng.Load(srcs.unpartRPL); return err })
		if err != nil {
			return nil, fmt.Errorf("fig4 %s unpart: %w", e.name, err)
		}
		dPart, err := Timed(func() error { _, err := e.eng.Load(srcs.part); return err })
		if err != nil {
			return nil, fmt.Errorf("fig4 %s part: %w", e.name, err)
		}
		rep.AddRow(e.name, fmtDur(dUnpart), fmtDur(dPart))
	}
	return rep, nil
}

// Fig5 regenerates Figure 5: the impact of file partitioning on the
// file-based engine's 3-line run time across data sizes.
func Fig5(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig5",
		Title:   "Impact of data partitioning on analytics (3-line, filestore)",
		Columns: []string{"consumers", "unpartitioned", "partitioned"},
		Notes:   []string{"expected shape: partitioned clearly faster, gap grows with size"},
	}
	for _, n := range opts.Scale.Consumers {
		srcs, err := opts.makeSources(n, "fig5", false, true)
		if err != nil {
			return nil, err
		}
		e := filestore.New()
		if _, err := e.LoadDirect(srcs.unpartRPL); err != nil {
			return nil, err
		}
		dUnpart, err := Timed(func() error {
			_, err := opts.run(e, core.Spec{Task: core.TaskThreeLine, Prefetch: opts.Prefetch})
			return err
		})
		if err != nil {
			return nil, err
		}
		if _, err := e.LoadDirect(srcs.part); err != nil {
			return nil, err
		}
		dPart, err := Timed(func() error {
			_, err := opts.run(e, core.Spec{Task: core.TaskThreeLine, Prefetch: opts.Prefetch})
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprint(n), fmtDur(dUnpart), fmtDur(dPart))
	}
	return rep, nil
}

// Fig6 regenerates Figure 6: cold-start vs warm-start running time of
// the 3-line algorithm on the three single-server platforms, with the
// warm time broken into the paper's T1 (quantiles), T2 (regression) and
// T3 (adjustment) phases.
func Fig6(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	srcs, err := opts.makeSources(opts.Scale.BaseConsumers, "fig6", false, true)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig6",
		Title:   "Cold-start vs warm-start (3-line)",
		Columns: []string{"engine", "cold", "warm", "T1 quantiles", "T2 regression", "T3 adjust"},
		Notes:   []string{"expected shape: cold > warm everywhere; colstore smallest gap; T2 dominates"},
	}
	fileE, rowE, colE := singleNodeEngines(&opts, "fig6")
	defer rowE.Close()

	type warmable interface {
		core.Engine
		Warm() error
	}
	for _, e := range []struct {
		name string
		eng  warmable
		src  *meterdata.Source
	}{
		{"filestore (Matlab)", fileE, srcs.part},
		{"rowstore (MADLib)", rowE, srcs.unpartRPL},
		{"colstore (System C)", colE, srcs.unpartRPL},
	} {
		if _, err := e.eng.Load(e.src); err != nil {
			return nil, err
		}
		if err := e.eng.Release(); err != nil {
			return nil, err
		}
		cold, err := Timed(func() error {
			_, err := opts.run(e.eng, core.Spec{Task: core.TaskThreeLine, Prefetch: opts.Prefetch})
			return err
		})
		if err != nil {
			return nil, err
		}
		if err := e.eng.Release(); err != nil {
			return nil, err
		}
		if err := e.eng.Warm(); err != nil {
			return nil, err
		}
		var warmRes *core.Results
		warm, err := Timed(func() error {
			r, err := opts.run(e.eng, core.Spec{Task: core.TaskThreeLine, Prefetch: opts.Prefetch})
			warmRes = r
			return err
		})
		if err != nil {
			return nil, err
		}
		// Phase breakdown comes from the execution pipeline's built-in
		// instrumentation of the warm run itself.
		if warmRes.Phases == nil {
			return nil, fmt.Errorf("fig6 %s: run reported no phase instrumentation", e.name)
		}
		p := warmRes.Phases
		rep.AddRow(e.name, fmtDur(cold), fmtDur(warm),
			fmtDur(p.T1Quantiles), fmtDur(p.T2Regression), fmtDur(p.T3Adjust))
	}
	return rep, nil
}

// Phases reports the execution pipeline's extract/compute/emit
// breakdown for a cold 3-line run on the three single-server platforms
// — the cost anatomy behind Figure 6, now measured inside the shared
// pipeline instead of re-derived by the harness.
func Phases(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	srcs, err := opts.makeSources(opts.Scale.BaseConsumers, "phases", false, true)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "phases",
		Title:   "Pipeline phase breakdown (cold start)",
		Columns: []string{"engine", "task", "extract", "compute", "emit", "rows", "MB extracted", "summary blocks", "MB stored", "MB raw"},
		Notes: []string{
			"expected shape: extract dominates cold runs; colstore's binary decode smallest",
			"summary blocks is the fraction of stored blocks the compressed-domain PAR",
			"fast path consumed without decoding (colstore only; other engines keep no",
			"block summaries and report n/a)",
			"MB stored vs MB raw is the engine-native storage footprint against the",
			"uncompressed matrix; their ratio is the storage compression factor (colstore",
			"segments are delta/XOR compressed, file engines report no native storage)",
		},
	}
	fileE, rowE, colE := singleNodeEngines(&opts, "phases")
	defer rowE.Close()
	for _, e := range []struct {
		name string
		eng  core.Engine
		src  *meterdata.Source
	}{
		{"filestore (Matlab)", fileE, srcs.part},
		{"rowstore (MADLib)", rowE, srcs.unpartRPL},
		{"colstore (System C)", colE, srcs.unpartRPL},
	} {
		st, err := e.eng.Load(e.src)
		if err != nil {
			return nil, err
		}
		for _, task := range []core.Task{core.TaskThreeLine, core.TaskPAR} {
			if err := e.eng.Release(); err != nil {
				return nil, err
			}
			res, err := opts.run(e.eng, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, err
			}
			if res.Phases == nil {
				return nil, fmt.Errorf("phases %s: run reported no phase instrumentation", e.name)
			}
			p := res.Phases
			rep.AddRow(e.name, fmt.Sprint(task), fmtDur(p.Extract.Wall), fmtDur(p.Compute.Wall), fmtDur(p.Emit.Wall),
				fmt.Sprint(p.Extract.Rows), fmtMB(p.Extract.Bytes), fmtBlockFraction(p),
				fmtMB(st.StorageBytes), fmtMB(st.RawBytes))
		}
	}
	return rep, nil
}

// fmtBlockFraction renders the compressed-domain fast paths' block
// provenance: how many stored blocks were consumed summary-only out of
// all blocks the run touched. Runs that never took a fast path report
// n/a.
func fmtBlockFraction(p *core.Phases) string {
	total := p.SummaryBlocks + p.DecodedBlocks
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d/%d (%.0f%%)", p.SummaryBlocks, total,
		100*float64(p.SummaryBlocks)/float64(total))
}

// Fig7 regenerates Figure 7: single-threaded cold-start execution time
// of each algorithm on each single-server platform across data sizes.
func Fig7(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig7",
		Title:   "Single-threaded execution times (cold start)",
		Columns: []string{"task", "consumers", "filestore", "rowstore", "colstore"},
		Notes: []string{
			"expected shape: colstore fastest overall; rowstore slowest on 3-line/PAR/similarity",
			"similarity uses the smaller consumer sweep (quadratic cost)",
		},
	}
	for _, task := range core.Tasks {
		sweep := opts.Scale.Consumers
		if task == core.TaskSimilarity {
			sweep = opts.Scale.SimilarityConsumers
			if len(sweep) == 0 {
				sweep = opts.Scale.Consumers
			}
		}
		for _, n := range sweep {
			srcs, err := opts.makeSources(n, fmt.Sprintf("fig7-%s", task), false, true)
			if err != nil {
				return nil, err
			}
			fileE, rowE, colE := singleNodeEngines(&opts, fmt.Sprintf("fig7-%v-%d", task, n))
			times := make([]time.Duration, 3)
			for i, eng := range []core.Engine{fileE, rowE, colE} {
				src := srcs.unpartRPL
				if i == 0 {
					src = srcs.part // filestore always runs partitioned (§5.3.1)
				}
				if _, err := eng.Load(src); err != nil {
					return nil, err
				}
				if err := eng.Release(); err != nil {
					return nil, err
				}
				d, err := Timed(func() error {
					_, err := opts.run(eng, core.Spec{Task: task, Workers: 1})
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("fig7 %v n=%d engine %d: %w", task, n, i, err)
				}
				times[i] = d
			}
			_ = rowE.Close()
			rep.AddRow(task.String(), fmt.Sprint(n), fmtDur(times[0]), fmtDur(times[1]), fmtDur(times[2]))
		}
	}
	return rep, nil
}

// Fig8 regenerates Figure 8: memory consumption of each algorithm on
// each single-server platform.
func Fig8(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	srcs, err := opts.makeSources(opts.Scale.BaseConsumers, "fig8", false, true)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig8",
		Title:   "Memory consumption per algorithm and engine (peak heap delta)",
		Columns: []string{"task", "filestore", "rowstore", "colstore"},
		Notes: []string{
			"expected shape: 3-line lowest; similarity highest; filestore partitioned streaming stays flat",
		},
	}
	for _, task := range core.Tasks {
		cells := []string{task.String()}
		fileE, rowE, colE := singleNodeEngines(&opts, fmt.Sprintf("fig8-%v", task))
		for i, eng := range []core.Engine{fileE, rowE, colE} {
			src := srcs.unpartRPL
			if i == 0 {
				src = srcs.part
			}
			if _, err := eng.Load(src); err != nil {
				return nil, err
			}
			if err := eng.Release(); err != nil {
				return nil, err
			}
			_, mem, err := MeasureMem(500*time.Microsecond, func() error {
				_, err := opts.run(eng, core.Spec{Task: task, Prefetch: opts.Prefetch})
				return err
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmtMB(mem.PeakBytes))
		}
		_ = rowE.Close()
		rep.AddRow(cells...)
	}
	return rep, nil
}

// Fig9 regenerates §5.3.3 / Figure 9: the row-per-reading layout versus
// the array-per-consumer layout inside the row store.
func Fig9(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	srcs, err := opts.makeSources(opts.Scale.BaseConsumers, "fig9", false, false)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig9",
		Title:   "Row store table layouts: one row per reading vs arrays per consumer",
		Columns: []string{"task", "row layout", "array layout", "speedup"},
		Notes:   []string{"expected shape: arrays faster on every task (paper: 1.1-1.7x)"},
	}
	rows := rowstore.New(filepath.Join(opts.WorkDir, "fig9-rows"), rowstore.WithLayout(rowstore.LayoutRows))
	defer rows.Close()
	arrays := rowstore.New(filepath.Join(opts.WorkDir, "fig9-arrays"), rowstore.WithLayout(rowstore.LayoutArrays))
	defer arrays.Close()
	if _, err := rows.Load(srcs.unpartRPL); err != nil {
		return nil, err
	}
	if _, err := arrays.Load(srcs.unpartRPL); err != nil {
		return nil, err
	}
	for _, task := range core.Tasks {
		var dRow, dArr time.Duration
		for _, m := range []struct {
			eng *rowstore.Engine
			d   *time.Duration
		}{{rows, &dRow}, {arrays, &dArr}} {
			if err := m.eng.Release(); err != nil {
				return nil, err
			}
			d, err := Timed(func() error {
				_, err := opts.run(m.eng, core.Spec{Task: task, Prefetch: opts.Prefetch})
				return err
			})
			if err != nil {
				return nil, err
			}
			*m.d = d
		}
		rep.AddRow(task.String(), fmtDur(dRow), fmtDur(dArr), fmtSpeedup(dRow, dArr))
	}
	return rep, nil
}

// Fig10 regenerates Figure 10: multi-core speedup of each algorithm as
// the worker count grows, on the column store (the paper sweeps all
// three engines; the shape is driven by the shared per-consumer
// parallelism, measured here on the fastest engine).
func Fig10(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	srcs, err := opts.makeSources(opts.Scale.BaseConsumers, "fig10", false, false)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig10",
		Title:   "Multi-core speedup (colstore, warm data)",
		Columns: []string{"task", "workers", "time", "speedup"},
		Notes:   []string{"expected shape: near-linear to the physical core count, then flattening"},
	}
	eng := colstore.New(filepath.Join(opts.WorkDir, "fig10-colstore"))
	if _, err := eng.Load(srcs.unpartRPL); err != nil {
		return nil, err
	}
	if err := eng.Warm(); err != nil {
		return nil, err
	}
	for _, task := range core.Tasks {
		var base time.Duration
		for _, w := range opts.Scale.Workers {
			d, err := Timed(func() error {
				_, err := opts.run(eng, core.Spec{Task: task, Workers: w, Prefetch: opts.Prefetch})
				return err
			})
			if err != nil {
				return nil, err
			}
			if w == opts.Scale.Workers[0] {
				base = d
			}
			rep.AddRow(task.String(), fmt.Sprint(w), fmtDur(d), fmtSpeedup(base, d))
		}
	}
	return rep, nil
}

// MatMul regenerates the §5.3.2 micro-benchmark: the optimized
// (blocked, parallel) matrix multiply versus the naive hand-written
// loop — the paper's Matlab-vs-System C anecdote.
func MatMul(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	n := opts.Scale.MatrixSize
	if n <= 0 {
		n = 256
	}
	rep := &Report{
		ID:      "matmul",
		Title:   fmt.Sprintf("%dx%d matrix multiplication: optimized kernel vs naive loop", n, n),
		Columns: []string{"kernel", "time"},
		Notes:   []string{"expected shape: blocked+parallel kernel (Matlab analogue) beats the naive loop (System C analogue)"},
	}
	a := stats.NewMatrix(n, n)
	b := stats.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = float64(i%97) / 97
		b.Data[i] = float64(i%89) / 89
	}
	dOpt, err := Timed(func() error { _, err := a.Mul(b); return err })
	if err != nil {
		return nil, err
	}
	dNaive, err := Timed(func() error { _, err := a.MulNaive(b); return err })
	if err != nil {
		return nil, err
	}
	rep.AddRow("optimized (Matlab analogue)", fmtDur(dOpt))
	rep.AddRow("naive (System C analogue)", fmtDur(dNaive))
	return rep, nil
}
