// Package benchmark is the experiment harness: it regenerates every
// table and figure of the paper's evaluation (§5) against the Go engine
// analogues, at laptop scale, and prints paper-style result tables.
//
// Each Fig*/Table* function provisions its own data, runs the relevant
// engines, and returns a Report whose rows mirror the series the paper
// plots. EXPERIMENTS.md records how each report's shape compares with
// the published figure.
package benchmark

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier, e.g. "fig7" or "table1".
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the table headers.
	Columns []string
	// Rows hold the table body.
	Rows [][]string
	// Notes list caveats (scaling, substitutions).
	Notes []string
}

// AddRow appends one formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Print renders the report as an aligned text table. Writes are
// buffered; the first write error surfaces from the final flush.
func (r *Report) Print(out io.Writer) error {
	w := bufio.NewWriter(out)
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
	return w.Flush()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtDur renders a duration with millisecond precision.
func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// fmtMB renders a byte count in MiB.
func fmtMB(b int64) string {
	return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
}

// fmtRate renders a households-per-second rate.
func fmtRate(households int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1f", float64(households)/d.Seconds())
}

// fmtSpeedup renders a relative speedup factor.
func fmtSpeedup(base, cur time.Duration) string {
	if cur <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(cur))
}
