package benchmark

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/rowstore"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// ingestWriters is the concurrent sharded writer count for the live
// ingestion experiment; households map onto writers with core.ShardFor.
const ingestWriters = 4

// ingestDays is how many days each household receives through the live
// append path on top of the loaded base.
const ingestDays = 3

// ingestWALModes is the durability sweep: every engine ingests once per
// mode so the write-ahead log's cost is recorded side by side with the
// undurable baseline. off = no log (a crash loses the unfolded tail),
// batch = CRC-framed log fsynced at group commit (acked batches survive
// any crash), always = fsync on every append.
var ingestWALModes = []struct {
	name   string
	on     bool
	policy wal.SyncPolicy
}{
	{"off", false, wal.SyncBatch},
	{"batch", true, wal.SyncBatch},
	{"always", true, wal.SyncAlways},
}

// liveEngine is an engine reachable through both the bulk-load and the
// live-append contracts.
type liveEngine interface {
	core.Engine
	core.Appender
}

// Ingest measures the append-driven engines under live ingestion: a
// base period is bulk-loaded, then ingestWriters sharded writers append
// hour batches concurrently — once per write-ahead-log mode. Reported
// per engine and mode: sustained append throughput in records/s, and
// the freshness lag — how stale an answer must be, measured as the time
// from the last append landing to a histogram over a read-isolated
// snapshot of everything ingested.
func Ingest(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	n := opts.Scale.BaseConsumers
	srcs, err := opts.makeSources(n, "ingest", false, false)
	if err != nil {
		return nil, err
	}
	// The live tail continues the stored period, generated with the
	// same seed pipeline (cf. the updates experiment's delta).
	live, err := seed.Generate(seed.Config{
		Consumers: n, Days: ingestDays, Seed: opts.Seed + 2000,
	})
	if err != nil {
		return nil, err
	}
	baseHours := opts.Scale.Days * timeseries.HoursPerDay
	liveHours := ingestDays * timeseries.HoursPerDay
	records := int64(liveHours) * int64(n)

	rep := &Report{
		ID: "ingest",
		Title: fmt.Sprintf("Live ingestion: %d consumers x %d hours, %d sharded writers, wal off/batch/always",
			n, liveHours, ingestWriters),
		Columns: []string{"engine", "wal", "records/s", "append time", "freshness lag", "epochs"},
		Notes: []string{
			"append-driven engine contract: hour batches land through Append while snapshots stay read-isolated",
			"wal=off keeps the tail in memory only; batch fsyncs the CRC-framed log at group commit before acking; always fsyncs every append",
			"records/s = live readings appended / wall time across all writers",
			"freshness lag = last append -> histogram answer over a snapshot (base + live), Workers=" + fmt.Sprint(ingestWriters),
		},
	}
	if opts.TailBudget > 0 {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("background checkpointer armed at a %d-reading tail budget for wal-on runs", opts.TailBudget))
	}

	for _, mode := range ingestWALModes {
		for _, e := range []struct {
			name string
			eng  liveEngine
		}{
			{"colstore (System C)", newIngestColstore(opts, mode.on, mode.policy, "ingest-col-"+mode.name)},
			{"rowstore (MADLib)", newIngestRowstore(opts, mode.on, mode.policy, "ingest-row-"+mode.name)},
		} {
			if _, err := e.eng.Load(srcs.unpartRPL); err != nil {
				return nil, err
			}
			ctx, cancel := context.WithCancel(context.Background())
			var ckptDone <-chan struct{}
			if mode.on && opts.TailBudget > 0 {
				ckptDone = startCheckpointer(ctx, e.eng)
			}
			d, err := Timed(func() error {
				return ingestConcurrently(e.eng, live, baseHours)
			})
			if err != nil {
				cancel()
				return nil, fmt.Errorf("ingest %s wal=%s: %w", e.name, mode.name, err)
			}
			lagStart := time.Now()
			res, epoch, err := exec.RunSnapshot(context.Background(), e.eng,
				core.Spec{Task: core.TaskHistogram, Workers: ingestWriters, Prefetch: opts.Prefetch})
			if err != nil {
				cancel()
				return nil, fmt.Errorf("ingest %s wal=%s: %w", e.name, mode.name, err)
			}
			lag := time.Since(lagStart)
			cancel()
			if ckptDone != nil {
				<-ckptDone
			}
			// The snapshot must already hold every appended reading.
			wantTotal := int64(baseHours + liveHours)
			for _, h := range res.Histograms {
				if h.Histogram.Total() != wantTotal {
					return nil, fmt.Errorf("ingest %s wal=%s: consumer %d has %d readings, want %d",
						e.name, mode.name, h.ID, h.Histogram.Total(), wantTotal)
				}
			}
			rep.AddRow(e.name, mode.name,
				fmt.Sprintf("%.0f", float64(records)/d.Seconds()),
				fmtDur(d), fmtDur(lag), fmt.Sprint(epoch))
			if err := releaseLiveEngine(e.eng); err != nil {
				return nil, fmt.Errorf("ingest %s wal=%s: %w", e.name, mode.name, err)
			}
		}
	}
	return rep, nil
}

// newIngestColstore builds a column store for one wal mode under the
// options' work dir.
func newIngestColstore(opts Options, on bool, policy wal.SyncPolicy, sub string) liveEngine {
	var eo []colstore.Option
	if on {
		eo = append(eo, colstore.WithWAL(policy))
		if opts.TailBudget > 0 {
			eo = append(eo, colstore.WithTailBudget(int64(opts.TailBudget)))
		}
	}
	return colstore.New(filepath.Join(opts.WorkDir, sub), eo...)
}

// newIngestRowstore builds a row store for one wal mode under the
// options' work dir.
func newIngestRowstore(opts Options, on bool, policy wal.SyncPolicy, sub string) liveEngine {
	var eo []rowstore.Option
	if on {
		eo = append(eo, rowstore.WithWAL(policy))
		if opts.TailBudget > 0 {
			eo = append(eo, rowstore.WithTailBudget(int64(opts.TailBudget)))
		}
	}
	return rowstore.New(filepath.Join(opts.WorkDir, sub), eo...)
}

// startCheckpointer arms background checkpointing on engines that
// support it.
func startCheckpointer(ctx context.Context, eng liveEngine) <-chan struct{} {
	type checkpointer interface {
		StartCheckpointer(ctx context.Context) <-chan struct{}
	}
	if c, ok := eng.(checkpointer); ok {
		return c.StartCheckpointer(ctx)
	}
	return nil
}

// releaseLiveEngine shuts an ingest engine down between modes so wal
// files and page pools don't pile up across the sweep.
func releaseLiveEngine(eng liveEngine) error {
	type closer interface{ Close() error }
	if c, ok := eng.(closer); ok {
		return c.Close()
	}
	return eng.Release()
}

// ingestConcurrently drives ingestWriters goroutines, each appending
// per-hour batches for its shard of the households, offset hours after
// the loaded base.
func ingestConcurrently(app core.Appender, live *timeseries.Dataset, offset int) error {
	var wg sync.WaitGroup
	errs := make(chan error, ingestWriters)
	hours := len(live.Temperature.Values)
	for w := 0; w < ingestWriters; w++ {
		var own []*timeseries.Series
		for _, s := range live.Series {
			if core.ShardFor(s.ID, ingestWriters) == w {
				own = append(own, s)
			}
		}
		wg.Add(1)
		go func(own []*timeseries.Series) {
			defer wg.Done()
			batch := make([]core.Reading, len(own))
			for h := 0; h < hours; h++ {
				for i, s := range own {
					batch[i] = core.Reading{
						ID:          s.ID,
						Hour:        offset + h,
						Consumption: s.Readings[h],
						Temperature: live.Temperature.Values[h],
					}
				}
				if err := app.Append(batch); err != nil {
					errs <- err
					return
				}
			}
		}(own)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
