package benchmark

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/rowstore"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// ingestWriters is the concurrent sharded writer count for the live
// ingestion experiment; households map onto writers with core.ShardFor.
const ingestWriters = 4

// ingestDays is how many days each household receives through the live
// append path on top of the loaded base.
const ingestDays = 3

// Ingest measures the append-driven engines under live ingestion: a
// base period is bulk-loaded, then ingestWriters sharded writers append
// hour batches concurrently. Reported per engine: sustained append
// throughput in records/s, and the freshness lag — how stale an answer
// must be, measured as the time from the last append landing to a
// histogram over a read-isolated snapshot of everything ingested.
func Ingest(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	n := opts.Scale.BaseConsumers
	srcs, err := opts.makeSources(n, "ingest", false, false)
	if err != nil {
		return nil, err
	}
	// The live tail continues the stored period, generated with the
	// same seed pipeline (cf. the updates experiment's delta).
	live, err := seed.Generate(seed.Config{
		Consumers: n, Days: ingestDays, Seed: opts.Seed + 2000,
	})
	if err != nil {
		return nil, err
	}
	baseHours := opts.Scale.Days * timeseries.HoursPerDay
	liveHours := ingestDays * timeseries.HoursPerDay
	records := int64(liveHours) * int64(n)

	rep := &Report{
		ID: "ingest",
		Title: fmt.Sprintf("Live ingestion: %d consumers x %d hours, %d sharded writers",
			n, liveHours, ingestWriters),
		Columns: []string{"engine", "records/s", "append time", "freshness lag", "epochs"},
		Notes: []string{
			"append-driven engine contract: hour batches land through Append while snapshots stay read-isolated",
			"records/s = live readings appended / wall time across all writers",
			"freshness lag = last append -> histogram answer over a snapshot (base + live), Workers=" + fmt.Sprint(ingestWriters),
		},
	}

	type liveEngine interface {
		core.Engine
		core.Appender
	}
	rowE := rowstore.New(filepath.Join(opts.WorkDir, "ingest-rowstore"))
	defer rowE.Close()
	colE := colstore.New(filepath.Join(opts.WorkDir, "ingest-colstore"))
	for _, e := range []struct {
		name string
		eng  liveEngine
	}{
		{"colstore (System C)", colE},
		{"rowstore (MADLib)", rowE},
	} {
		if _, err := e.eng.Load(srcs.unpartRPL); err != nil {
			return nil, err
		}
		d, err := Timed(func() error {
			return ingestConcurrently(e.eng, live, baseHours)
		})
		if err != nil {
			return nil, fmt.Errorf("ingest %s: %w", e.name, err)
		}
		lagStart := time.Now()
		res, epoch, err := exec.RunSnapshot(context.Background(), e.eng,
			core.Spec{Task: core.TaskHistogram, Workers: ingestWriters, Prefetch: opts.Prefetch})
		if err != nil {
			return nil, fmt.Errorf("ingest %s: %w", e.name, err)
		}
		lag := time.Since(lagStart)
		// The snapshot must already hold every appended reading.
		wantTotal := int64(baseHours + liveHours)
		for _, h := range res.Histograms {
			if h.Histogram.Total() != wantTotal {
				return nil, fmt.Errorf("ingest %s: consumer %d has %d readings, want %d",
					e.name, h.ID, h.Histogram.Total(), wantTotal)
			}
		}
		rep.AddRow(e.name,
			fmt.Sprintf("%.0f", float64(records)/d.Seconds()),
			fmtDur(d), fmtDur(lag), fmt.Sprint(epoch))
	}
	return rep, nil
}

// ingestConcurrently drives ingestWriters goroutines, each appending
// per-hour batches for its shard of the households, offset hours after
// the loaded base.
func ingestConcurrently(app core.Appender, live *timeseries.Dataset, offset int) error {
	var wg sync.WaitGroup
	errs := make(chan error, ingestWriters)
	hours := len(live.Temperature.Values)
	for w := 0; w < ingestWriters; w++ {
		var own []*timeseries.Series
		for _, s := range live.Series {
			if core.ShardFor(s.ID, ingestWriters) == w {
				own = append(own, s)
			}
		}
		wg.Add(1)
		go func(own []*timeseries.Series) {
			defer wg.Done()
			batch := make([]core.Reading, len(own))
			for h := 0; h < hours; h++ {
				for i, s := range own {
					batch[i] = core.Reading{
						ID:          s.ID,
						Hour:        offset + h,
						Consumption: s.Readings[h],
						Temperature: live.Temperature.Values[h],
					}
				}
				if err := app.Append(batch); err != nil {
					errs <- err
					return
				}
			}
		}(own)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
