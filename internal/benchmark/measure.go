package benchmark

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Timed runs fn and returns its wall-clock duration alongside fn's
// error.
func Timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// MemUsage summarizes heap usage observed while a measured function
// ran, the harness's stand-in for the paper's "free -m every five
// seconds" sampling (Figure 8, 15).
type MemUsage struct {
	// PeakBytes is the highest sampled heap allocation delta.
	PeakBytes int64
	// AvgBytes is the mean sampled heap allocation delta.
	AvgBytes int64
	// Samples is the number of samples taken.
	Samples int
}

// MeasureMem runs fn while sampling the heap every interval and returns
// the duration, memory summary and fn's error. Heap deltas are relative
// to a GC-settled baseline taken before fn starts.
func MeasureMem(interval time.Duration, fn func() error) (time.Duration, MemUsage, error) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	// Two collections settle floating garbage from earlier work so the
	// baseline is a stable live-heap figure.
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := int64(ms.HeapAlloc)

	stop := make(chan struct{})
	done := make(chan MemUsage, 1)
	var running atomic.Bool
	running.Store(true)
	go func() {
		var usage MemUsage
		var sum int64
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for running.Load() {
			select {
			case <-tick.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				delta := int64(s.HeapAlloc) - base
				if delta < 0 {
					delta = 0
				}
				if delta > usage.PeakBytes {
					usage.PeakBytes = delta
				}
				sum += delta
				usage.Samples++
			case <-stop:
			}
		}
		if usage.Samples > 0 {
			usage.AvgBytes = sum / int64(usage.Samples)
		}
		done <- usage
	}()

	start := time.Now()
	err := fn()
	elapsed := time.Since(start)

	// One final sample to catch short-lived runs.
	var s runtime.MemStats
	runtime.ReadMemStats(&s)
	finalDelta := int64(s.HeapAlloc) - base
	running.Store(false)
	close(stop)
	usage := <-done
	if finalDelta > usage.PeakBytes {
		usage.PeakBytes = finalDelta
	}
	if usage.Samples == 0 {
		usage.AvgBytes = usage.PeakBytes
		usage.Samples = 1
	}
	return elapsed, usage, err
}
