package benchmark

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestTimed(t *testing.T) {
	d, err := Timed(func() error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d < 5*time.Millisecond {
		t.Errorf("duration %v below the slept 5ms", d)
	}

	want := errors.New("boom")
	if _, err := Timed(func() error { return want }); !errors.Is(err, want) {
		t.Errorf("Timed error = %v, want %v", err, want)
	}
}

func TestMeasureMemSamples(t *testing.T) {
	d, usage, err := MeasureMem(time.Millisecond, func() error {
		// Allocate visibly so the sampler sees a heap delta.
		buf := make([][]byte, 0, 64)
		for i := 0; i < 64; i++ {
			buf = append(buf, make([]byte, 1<<20))
			time.Sleep(500 * time.Microsecond)
		}
		runtime.KeepAlive(buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("elapsed = %v", d)
	}
	if usage.Samples < 1 {
		t.Errorf("samples = %d, want at least the final sample", usage.Samples)
	}
	if usage.PeakBytes <= 0 {
		t.Errorf("peak = %d, want > 0 after allocating 64 MiB", usage.PeakBytes)
	}
	if usage.AvgBytes < 0 || usage.AvgBytes > usage.PeakBytes {
		t.Errorf("avg %d out of range [0, %d]", usage.AvgBytes, usage.PeakBytes)
	}
}

func TestMeasureMemError(t *testing.T) {
	want := errors.New("measured failure")
	_, _, err := MeasureMem(time.Millisecond, func() error { return want })
	if !errors.Is(err, want) {
		t.Errorf("error = %v, want %v", err, want)
	}
}

func TestMeasureMemDefaultsInterval(t *testing.T) {
	// A non-positive interval must not hang or divide by zero.
	_, usage, err := MeasureMem(0, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if usage.Samples < 1 {
		t.Errorf("samples = %d", usage.Samples)
	}
}

// TestMeasureMemNoGoroutineLeak pins down that the sampler goroutine
// exits once the measured function returns: every reported number runs
// through this harness, so a leak here compounds across a whole
// benchmark suite and skews later memory readings.
func TestMeasureMemNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		if _, _, err := MeasureMem(time.Millisecond, func() error {
			time.Sleep(2 * time.Millisecond)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The sampler sends its summary before exiting, so by the time
	// MeasureMem returns only scheduler lag can keep it alive; give it
	// a few chances to disappear before declaring a leak.
	for attempt := 0; attempt < 50; attempt++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after 10 MeasureMem runs", before, runtime.NumGoroutine())
}
