package benchmark

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/generator"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// scaleupSeedConsumers sizes the seed the generator disaggregates. It
// stays tiny — the whole point is that the synthetic population, not
// the seed, carries the scale.
const scaleupSeedConsumers = 20

// Scaleup extends Figures 7/8 past what fits in memory: consumers are
// streamed straight into a compressed column-store segment file (never
// materializing the raw matrix), then the histogram and 3-line tasks
// run over the paged engine under a fixed decoded-block budget — by
// default a quarter of the raw matrix size, or Options.MemBudget when
// set. The report records the compression ratio and the throughput the
// budgeted engine sustains, which is the claim the paper's scale-up
// experiments make for System C.
func Scaleup(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	days := opts.Scale.Days
	rep := &Report{
		ID:    "scaleup",
		Title: fmt.Sprintf("Out-of-core scale-up (%d-day series, budget = MemBudget or raw/4)", days),
		Columns: []string{"consumers", "raw MB", "stored MB", "ratio",
			"budget MB", "generate", "enc/s", "histogram", "3-line", "PAR", "rows/s", "peak MB"},
		Notes: []string{
			"consumers stream into compressed segments (Wh-quantized); the raw matrix is never held",
			fmt.Sprintf("segment encoding uses %d encoder worker(s); the file is byte-identical at any count", max(1, opts.Encoders)),
			"tasks run on the paged column store: blocks decode on demand into a budgeted cache",
			"histogram and PAR take the compressed-domain fast paths over the segment block headers",
			"enc/s is consumers per second of generate+encode wall; rows/s is consumers per second of 3-line wall at 4 workers",
		},
	}

	seedDS, err := seed.Generate(seed.Config{
		Consumers: scaleupSeedConsumers, Days: days, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	gen, err := generator.New(seedDS, generator.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}

	for _, n := range opts.Scale.Consumers {
		row, err := scaleupRun(&opts, gen, seedDS.Temperature, n)
		if err != nil {
			return nil, fmt.Errorf("scaleup %d consumers: %w", n, err)
		}
		rep.AddRow(row...)
	}
	return rep, nil
}

// scaleupRun generates, stores and measures one population size.
func scaleupRun(opts *Options, gen *generator.Generator, temp *timeseries.Temperature, n int) ([]string, error) {
	dir := filepath.Join(opts.WorkDir, fmt.Sprintf("scaleup-%d", n))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, colstore.SegmentFileName)

	var raw int64
	genTime, err := Timed(func() error {
		wopts := []colstore.WriterOption{colstore.WithQuantize(3)}
		if opts.Encoders > 1 {
			wopts = append(wopts, colstore.WithEncoders(opts.Encoders))
		}
		w, err := colstore.NewSegmentWriter(path, temp.Values, wopts...)
		if err != nil {
			return err
		}
		buf := make([]float64, len(temp.Values))
		for i := 0; i < n; i++ {
			if err := gen.SeriesInto(buf, temp); err != nil {
				_ = w.Close()
				return err
			}
			if err := w.Append(timeseries.ID(i+1), buf); err != nil {
				_ = w.Close()
				return err
			}
		}
		raw = w.RawBytes()
		return w.Close()
	})
	if err != nil {
		return nil, err
	}

	budget := opts.MemBudget
	if budget <= 0 {
		budget = raw / 4
	}
	eng := colstore.New(dir, colstore.WithMemBudget(budget))
	st, err := eng.OpenExisting()
	if err != nil {
		return nil, err
	}
	defer func() { _ = eng.Release() }()

	histTime, err := Timed(func() error {
		_, err := opts.run(eng, core.Spec{Task: core.TaskHistogram, Workers: 4, Prefetch: opts.Prefetch})
		return err
	})
	if err != nil {
		return nil, err
	}
	var tlTime time.Duration
	_, mem, err := MeasureMem(time.Millisecond, func() error {
		var err error
		tlTime, err = Timed(func() error {
			_, err := opts.run(eng, core.Spec{Task: core.TaskThreeLine, Workers: 4, Prefetch: opts.Prefetch})
			return err
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	parTime, err := Timed(func() error {
		_, err := opts.run(eng, core.Spec{Task: core.TaskPAR, Workers: 4, Prefetch: opts.Prefetch})
		return err
	})
	if err != nil {
		return nil, err
	}

	ratio := "n/a"
	if st.StorageBytes > 0 {
		ratio = fmt.Sprintf("%.1fx", float64(st.RawBytes)/float64(st.StorageBytes))
	}
	return []string{
		fmt.Sprint(n), fmtMB(st.RawBytes), fmtMB(st.StorageBytes), ratio,
		fmtMB(budget), fmtDur(genTime), fmtRate(n, genTime), fmtDur(histTime), fmtDur(tlTime),
		fmtDur(parTime), fmtRate(n, tlTime), fmtMB(mem.PeakBytes),
	}, nil
}
