package benchmark

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Options configures an experiment run. Zero values take the Small
// scale, which keeps the whole suite fast enough for `go test`.
type Options struct {
	// WorkDir receives generated data and engine storage. Required.
	WorkDir string
	// Scale sizes the workloads.
	Scale Scale
	// Seed drives all data generation.
	Seed int64
	// Prefetch pins the execution pipeline's extraction mode for every
	// experiment Spec: the zero value lets eligible runs overlap
	// extraction with compute, PrefetchOff forces the serial path
	// (cmd/smbench -prefetch=off), which is the escape hatch for
	// comparing against pre-overlap numbers.
	Prefetch core.PrefetchMode
	// FailPolicy is applied to every experiment Spec that does not pin
	// its own: FailFast (the zero value) preserves the historical
	// all-or-nothing semantics, Quarantine/Repair let experiments finish
	// over partially bad data (cmd/smbench -failpolicy).
	FailPolicy core.FailPolicy
	// Timeout, when positive, bounds each measured engine run with a
	// context deadline (cmd/smbench -timeout). Expired runs fail the
	// experiment with context.DeadlineExceeded.
	Timeout time.Duration
	// MemBudget, when positive, caps the column store's decoded-block
	// cache at this many bytes (cmd/smbench -membudget): the engine
	// pages compressed blocks in and out instead of decoding the whole
	// matrix, so datasets larger than memory stay runnable. Zero keeps
	// the historical fully-decoded in-core behavior.
	MemBudget int64
	// Encoders, when above 1, fans the scale-up experiment's segment
	// encoding out over that many workers (cmd/smbench -encoders). The
	// written file is byte-identical to the serial writer's; only the
	// generate wall-clock changes. Zero or 1 keeps the serial path.
	Encoders int
	// WAL selects the write-ahead-log fsync policy for append-driven
	// engines in the recovery experiment (cmd/smbench -wal / -fsync):
	// "off" (no log), "batch" (fsync at group commit — the durable
	// default) or "always" (fsync every append). The ingest experiment
	// ignores it and sweeps all three modes so the durability cost is
	// recorded side by side. Empty means "batch" where a log is needed.
	WAL string
	// TailBudget, when positive, arms background checkpointing in the
	// WAL-backed engines (cmd/smbench -tailbudget): once that many
	// readings accumulate past the last checkpoint the tail is folded
	// into the base segment and the log truncated. Zero leaves
	// checkpointing to the experiments' explicit calls.
	TailBudget int
}

// run executes spec on eng under the options' failure policy and
// timeout. Every experiment's measured engine invocation funnels
// through here so -failpolicy and -timeout reach all of them.
func (o *Options) run(eng core.Engine, spec core.Spec) (*core.Results, error) {
	if spec.FailPolicy == core.FailFast {
		spec.FailPolicy = o.FailPolicy
	}
	ctx := context.Background()
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	return eng.RunContext(ctx, spec)
}

// Scale sizes an experiment suite. The paper's absolute sizes (10 GB to
// 1 TB) are scaled to consumer counts that run on one machine; shapes,
// not absolute numbers, are the reproduction target.
type Scale struct {
	// Consumers is the data-size sweep (Figures 5, 7, 11, 13, 16).
	Consumers []int
	// BaseConsumers is the single-size workload (Figures 4, 6, 9, 10).
	BaseConsumers int
	// SimilarityConsumers is the sweep for similarity experiments.
	SimilarityConsumers []int
	// Days is the series length in days.
	Days int
	// Workers is the thread sweep for Figure 10.
	Workers []int
	// ClusterNodes is the node sweep for Figures 14, 17, 19.
	ClusterNodes []int
	// FileCounts is the file-count sweep for Figure 18.
	FileCounts []int
	// MatrixSize is the matrix multiplication micro-benchmark dimension.
	MatrixSize int
}

// SmallScale is the test-suite scale: seconds, not minutes.
func SmallScale() Scale {
	return Scale{
		Consumers:           []int{4, 8, 16},
		BaseConsumers:       8,
		SimilarityConsumers: []int{8, 16},
		Days:                30,
		Workers:             []int{1, 2, 4},
		ClusterNodes:        []int{2, 4},
		FileCounts:          []int{2, 8},
		MatrixSize:          64,
	}
}

// DefaultScale is the CLI scale: a few minutes for the full suite.
func DefaultScale() Scale {
	return Scale{
		Consumers:           []int{50, 100, 200, 400},
		BaseConsumers:       200,
		SimilarityConsumers: []int{100, 200, 400},
		Days:                365,
		Workers:             []int{1, 2, 4, 8},
		ClusterNodes:        []int{4, 8, 12, 16},
		FileCounts:          []int{10, 100, 1000},
		MatrixSize:          400,
	}
}

func (o *Options) fill() error {
	if o.WorkDir == "" {
		return fmt.Errorf("benchmark: Options.WorkDir is required")
	}
	if len(o.Scale.Consumers) == 0 {
		o.Scale = SmallScale()
	}
	if o.Scale.BaseConsumers == 0 {
		o.Scale.BaseConsumers = o.Scale.Consumers[len(o.Scale.Consumers)-1]
	}
	if o.Scale.Days == 0 {
		o.Scale.Days = 30
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	switch o.WAL {
	case "", "off", "batch", "always":
	default:
		return fmt.Errorf("benchmark: Options.WAL %q is not off, batch or always", o.WAL)
	}
	return os.MkdirAll(o.WorkDir, 0o755)
}

// makeDataset builds (and caches per call) a seed dataset of n
// consumers.
func (o *Options) makeDataset(n int) (*timeseries.Dataset, error) {
	return seed.Generate(seed.Config{Consumers: n, Days: o.Scale.Days, Seed: o.Seed})
}

// sources bundles the layouts one experiment needs.
type sources struct {
	ds *timeseries.Dataset
	// unpartRPL is one big reading-per-line file; unpartSPL one big
	// series-per-line file; part is one file per consumer.
	unpartRPL, unpartSPL, part *meterdata.Source
}

// makeSources writes a dataset in the requested layouts under
// workdir/sub.
func (o *Options) makeSources(n int, sub string, wantSPL, wantPart bool) (*sources, error) {
	ds, err := o.makeDataset(n)
	if err != nil {
		return nil, err
	}
	out := &sources{ds: ds}
	dir := fmt.Sprintf("%s/%s-%d", o.WorkDir, sub, n)
	out.unpartRPL, err = meterdata.WriteUnpartitioned(dir+"-rpl", ds, meterdata.FormatReadingPerLine)
	if err != nil {
		return nil, err
	}
	if wantSPL {
		out.unpartSPL, err = meterdata.WriteUnpartitioned(dir+"-spl", ds, meterdata.FormatSeriesPerLine)
		if err != nil {
			return nil, err
		}
	}
	if wantPart {
		out.part, err = meterdata.WritePartitioned(dir+"-part", ds, meterdata.FormatReadingPerLine)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// newCluster builds a simulated cluster with the given node count and a
// fast but non-zero network.
func newCluster(nodes int) (*distsim.Cluster, error) {
	return distsim.New(distsim.Config{
		Nodes:           nodes,
		SlotsPerNode:    4,
		TransferLatency: 20 * time.Microsecond,
		BytesPerSecond:  1 << 31,
		// Simulated per-slot processing rate: lets clusters larger than
		// the host's core count exhibit genuine scaling (speedup figures
		// 14/17/19) while keeping absolute run times in seconds.
		ComputeBytesPerSecond: 8 << 20,
	})
}
