package benchmark

import (
	"fmt"
	"sort"
)

// Experiment is a runnable experiment regenerating one paper table or
// figure.
type Experiment struct {
	// ID is the registry key ("fig4", "table1", ...).
	ID string
	// Description is a one-line summary.
	Description string
	// Run executes the experiment.
	Run func(Options) (*Report, error)
}

// registry maps experiment IDs to implementations.
var registry = map[string]Experiment{}

func register(id, desc string, run func(Options) (*Report, error)) {
	registry[id] = Experiment{ID: id, Description: desc, Run: run}
}

func init() {
	register("table1", "statistical functions built into each platform", Table1)
	register("fig4", "data loading times, partitioned vs unpartitioned", Fig4)
	register("fig5", "partitioning impact on the file-based engine (3-line)", Fig5)
	register("fig6", "cold vs warm start with T1/T2/T3 phase breakdown", Fig6)
	register("phases", "pipeline extract/compute/emit breakdown (3-line, cold)", Phases)
	register("fig7", "single-threaded execution times, all tasks x engines", Fig7)
	register("fig8", "memory consumption per task and engine", Fig8)
	register("fig9", "row layout vs array layout in the row store", Fig9)
	register("fig10", "multi-core speedup per task", Fig10)
	register("fig11", "single-server column store vs cluster engines", Fig11)
	register("fig12", "throughput per server", Fig12)
	register("fig13", "Spark vs Hive, data format 1 execution times", Fig13)
	register("fig14", "speedup with cluster size, format 1", Fig14)
	register("fig15", "cluster memory consumption, format 1", Fig15)
	register("fig16", "Spark vs Hive, data format 2 execution times", Fig16)
	register("fig17", "speedup with cluster size, format 2", Fig17)
	register("fig18", "data format 3: UDTF vs UDAF vs Spark, file-count sweep", Fig18)
	register("fig19", "speedup with cluster size, format 3", Fig19)
	register("updates", "cost of appending one day to every series (§3 future work)", Updates)
	register("ingest", "live ingestion: concurrent sharded appends with snapshot freshness lag", Ingest)
	register("streaming", "streaming anomaly alerts (§6 future work)", Streaming)
	register("matmul", "matrix multiplication micro-benchmark (§5.3.2)", MatMul)
	register("tasksweep", "reduce-task count sweep (footnote 8)", TaskSweep)
	register("faults", "throughput vs injected fault rate per engine (containment cost)", Faults)
	register("scaleup", "out-of-core scale-up: compressed segments under a memory budget (extends figs 7/8)", Scaleup)
	register("recovery", "crash recovery: write-ahead log replay to first verified answer", Recovery)
}

// Lookup returns the experiment registered under id.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("benchmark: unknown experiment %q (try `list`)", id)
	}
	return e, nil
}

// All returns every experiment sorted by ID (figures in numeric order).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return experimentOrder(out[i].ID) < experimentOrder(out[j].ID) })
	return out
}

// experimentOrder sorts table1 first, figures numerically, extras last.
func experimentOrder(id string) int {
	switch id {
	case "table1":
		return 0
	case "updates":
		return 99
	case "streaming":
		return 98
	case "matmul":
		return 100
	case "tasksweep":
		return 101
	case "faults":
		return 102
	case "scaleup":
		return 103
	case "recovery":
		return 104
	case "phases":
		return 97
	}
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return n
	}
	return 999
}
