package benchmark

import (
	"fmt"
	"path/filepath"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/filestore"
	"github.com/smartmeter/smartbench/internal/engine/rowstore"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Updates regenerates the paper's proposed future-work experiment (§3):
// the cost of appending one day's worth of new readings to every stored
// series, per engine — quantifying how expensive the read-optimized
// structures are to update.
func Updates(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	n := opts.Scale.BaseConsumers
	srcs, err := opts.makeSources(n, "updates", false, false)
	if err != nil {
		return nil, err
	}
	// The delta: one extra day for every household, generated with the
	// same seed pipeline continuing after the stored period.
	deltaFull, err := seed.Generate(seed.Config{
		Consumers: n, Days: 1, Seed: opts.Seed + 1000,
	})
	if err != nil {
		return nil, err
	}
	delta := &timeseries.Dataset{Series: deltaFull.Series, Temperature: deltaFull.Temperature}

	rep := &Report{
		ID:      "updates",
		Title:   fmt.Sprintf("Appending one day to every series (%d consumers)", n),
		Columns: []string{"engine", "append time", "storage written", "amplification"},
		Notes: []string{
			"paper §3 future work: read-optimized structures may be expensive to update",
			"amplification = storage written / size of the appended day",
			"expected shape: colstore rewrites its whole segment image (highest amplification); rowstore writes only new tuples",
		},
	}

	type appendable interface {
		core.Engine
		core.DeltaAppender
	}
	fileE := filestore.New(filestore.WithSplitDir(filepath.Join(opts.WorkDir, "updates-split")))
	rowE := rowstore.New(filepath.Join(opts.WorkDir, "updates-rowstore"))
	defer rowE.Close()
	colE := colstore.New(filepath.Join(opts.WorkDir, "updates-colstore"))
	// Raw size of the appended day, for the amplification ratio.
	var deltaBytes int64
	for _, s := range delta.Series {
		deltaBytes += int64(len(s.Readings)) * 16
	}
	for _, e := range []struct {
		name    string
		eng     appendable
		written func() (int64, error)
	}{
		{"filestore (Matlab)", fileE, func() (int64, error) { return dirBytes(fileE) }},
		{"rowstore (MADLib)", rowE, func() (int64, error) { return rowE.StorageBytes(), nil }},
		{"colstore (System C)", colE, func() (int64, error) { return colE.StorageBytes() }},
	} {
		if _, err := e.eng.Load(srcs.unpartRPL); err != nil {
			return nil, err
		}
		before, err := e.written()
		if err != nil {
			return nil, err
		}
		d, err := Timed(func() error { return e.eng.AppendDelta(delta) })
		if err != nil {
			return nil, fmt.Errorf("updates %s: %w", e.name, err)
		}
		// Storage written: growth for append-style engines, the full new
		// image for rewrite-style engines.
		after, err := e.written()
		if err != nil {
			return nil, err
		}
		written := after - before
		if _, isCol := e.eng.(*colstore.Engine); isCol {
			written = after // the whole image is rewritten
		}
		// Verify the appended data is visible: every consumer's series
		// grew by one day.
		res, err := opts.run(e.eng, core.Spec{Task: core.TaskHistogram, Prefetch: opts.Prefetch})
		if err != nil {
			return nil, err
		}
		verified := 0
		wantTotal := int64((opts.Scale.Days + 1) * timeseries.HoursPerDay)
		for _, h := range res.Histograms {
			if h.Histogram.Total() == wantTotal {
				verified++
			}
		}
		if verified != n {
			return nil, fmt.Errorf("updates %s: only %d/%d series grew", e.name, verified, n)
		}
		rep.AddRow(e.name, fmtDur(d), fmtMB(written),
			fmt.Sprintf("%.1fx", float64(written)/float64(deltaBytes)))
	}
	return rep, nil
}

// dirBytes sums the filestore engine's source files.
func dirBytes(e *filestore.Engine) (int64, error) {
	src := e.Source()
	if src == nil {
		return 0, fmt.Errorf("updates: filestore has no source")
	}
	return src.TotalBytes()
}
