package benchmark

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// memSink keeps MeasureMem's test allocation live across samples.
var memSink []byte

func smallOpts(t *testing.T) Options {
	t.Helper()
	return Options{WorkDir: t.TempDir(), Scale: SmallScale(), Seed: 7}
}

// TestAllExperimentsRun executes every registered experiment at the
// small scale — the end-to-end integration test for the whole harness.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			rep, err := exp.Run(smallOpts(t))
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if rep.ID != exp.ID {
				t.Errorf("report ID %q, want %q", rep.ID, exp.ID)
			}
			if len(rep.Rows) == 0 {
				t.Errorf("%s produced no rows", exp.ID)
			}
			for i, row := range rep.Rows {
				if len(row) != len(rep.Columns) {
					t.Errorf("%s row %d has %d cells, want %d", exp.ID, i, len(row), len(rep.Columns))
				}
			}
			var buf bytes.Buffer
			if err := rep.Print(&buf); err != nil {
				t.Fatalf("Print: %v", err)
			}
			if !strings.Contains(buf.String(), exp.ID) {
				t.Errorf("printed report missing ID header")
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig4"); err != nil {
		t.Errorf("fig4: %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown: want error")
	}
}

func TestAllOrdered(t *testing.T) {
	all := All()
	if len(all) < 19 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	if all[0].ID != "table1" {
		t.Errorf("first = %s", all[0].ID)
	}
	// Figures appear in numeric order.
	var figOrder []int
	for _, e := range all {
		var n int
		if _, err := fmt.Sscanf(e.ID, "fig%d", &n); err == nil {
			figOrder = append(figOrder, n)
		}
	}
	for i := 1; i < len(figOrder); i++ {
		if figOrder[i] < figOrder[i-1] {
			t.Errorf("figures out of order: %v", figOrder)
			break
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	var o Options
	if err := o.fill(); err == nil {
		t.Error("missing WorkDir: want error")
	}
	o = Options{WorkDir: t.TempDir()}
	if err := o.fill(); err != nil {
		t.Fatal(err)
	}
	if len(o.Scale.Consumers) == 0 || o.Seed == 0 || o.Scale.Days == 0 {
		t.Errorf("fill did not apply defaults: %+v", o)
	}
}

func TestTimedAndMeasureMem(t *testing.T) {
	d, err := Timed(func() error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err != nil || d < 5*time.Millisecond {
		t.Errorf("Timed = %v, %v", d, err)
	}
	boom := errors.New("boom")
	if _, err := Timed(func() error { return boom }); err != boom {
		t.Errorf("Timed err = %v", err)
	}

	_, mem, err := MeasureMem(100*time.Microsecond, func() error {
		memSink = make([]byte, 8<<20)
		for i := range memSink {
			memSink[i] = byte(i)
		}
		time.Sleep(3 * time.Millisecond)
		return nil
	})
	memSink = nil
	if err != nil {
		t.Fatal(err)
	}
	if mem.PeakBytes < 4<<20 {
		t.Errorf("peak = %d, want >= 4 MiB", mem.PeakBytes)
	}
	if mem.Samples == 0 {
		t.Error("no samples")
	}
	if _, _, err := MeasureMem(0, func() error { return boom }); err != boom {
		t.Error("MeasureMem should propagate errors")
	}
}

func TestReportPrintAlignment(t *testing.T) {
	rep := &Report{
		ID:      "x",
		Title:   "test",
		Columns: []string{"a", "longcolumn"},
		Notes:   []string{"a note"},
	}
	rep.AddRow("wide-cell-value", "1")
	var buf bytes.Buffer
	if err := rep.Print(&buf); err != nil {
		t.Fatalf("Print: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "wide-cell-value") || !strings.Contains(out, "note: a note") {
		t.Errorf("print output:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtMB(1<<20) != "1.00 MiB" {
		t.Errorf("fmtMB = %s", fmtMB(1<<20))
	}
	if fmtRate(10, 2*time.Second) != "5.0" {
		t.Errorf("fmtRate = %s", fmtRate(10, 2*time.Second))
	}
	if fmtRate(10, 0) != "inf" {
		t.Error("fmtRate zero duration")
	}
	if fmtSpeedup(2*time.Second, time.Second) != "2.00x" {
		t.Errorf("fmtSpeedup = %s", fmtSpeedup(2*time.Second, time.Second))
	}
	if fmtSpeedup(time.Second, 0) != "inf" {
		t.Error("fmtSpeedup zero")
	}
}
