package benchmark

import (
	"fmt"
	"path/filepath"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/engine/mapreduce"
	"github.com/smartmeter/smartbench/internal/engine/rdd"
	"github.com/smartmeter/smartbench/internal/meterdata"
)

// clusterPair builds a fresh cluster with a Hive and a Spark engine
// loaded from the given source.
func clusterPair(nodes int, src *meterdata.Source, hiveOpts []mapreduce.Option) (*dfs.FS, *mapreduce.Engine, *rdd.Engine, error) {
	cluster, err := newCluster(nodes)
	if err != nil {
		return nil, nil, nil, err
	}
	fsys, err := dfs.New(cluster, dfs.WithBlockSize(256<<10))
	if err != nil {
		return nil, nil, nil, err
	}
	hive := mapreduce.New(fsys, hiveOpts...)
	spark := rdd.New(fsys)
	if _, err := hive.Load(src); err != nil {
		return nil, nil, nil, err
	}
	if _, err := spark.Load(src); err != nil {
		return nil, nil, nil, err
	}
	return fsys, hive, spark, nil
}

// timeEngine times one cold task run on an engine, routed through
// opts.run so -failpolicy and -timeout apply.
func timeEngine(opts *Options, e core.Engine, spec core.Spec) (time.Duration, error) {
	if err := e.Release(); err != nil {
		return 0, err
	}
	return Timed(func() error {
		_, err := opts.run(e, spec)
		return err
	})
}

// Fig11 regenerates Figure 11: the single-server column store versus
// the cluster engines as data grows.
func Fig11(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	nodes := maxInt(opts.Scale.ClusterNodes)
	rep := &Report{
		ID:      "fig11",
		Title:   fmt.Sprintf("System C (1 server) vs Spark & Hive (%d-node cluster)", nodes),
		Columns: []string{"task", "consumers", "colstore", "spark", "hive"},
		Notes: []string{
			"expected shape: colstore keeps up at small-to-medium sizes; cluster engines catch up as data grows",
		},
	}
	for _, task := range core.Tasks {
		sweep := opts.Scale.Consumers
		if task == core.TaskSimilarity {
			sweep = opts.Scale.SimilarityConsumers
		}
		for _, n := range sweep {
			srcs, err := opts.makeSources(n, fmt.Sprintf("fig11-%v", task), true, false)
			if err != nil {
				return nil, err
			}
			colE := colstore.New(filepath.Join(opts.WorkDir, fmt.Sprintf("fig11-col-%v-%d", task, n)))
			if _, err := colE.Load(srcs.unpartRPL); err != nil {
				return nil, err
			}
			dCol, err := timeEngine(&opts, colE, core.Spec{Task: task, Workers: 8, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, err
			}
			// Cluster engines read the series-per-line layout (the format
			// that performed best, §5.5).
			_, hive, spark, err := clusterPair(nodes, srcs.unpartSPL, nil)
			if err != nil {
				return nil, err
			}
			dSpark, err := timeEngine(&opts, spark, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, err
			}
			dHive, err := timeEngine(&opts, hive, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, err
			}
			rep.AddRow(task.String(), fmt.Sprint(n), fmtDur(dCol), fmtDur(dSpark), fmtDur(dHive))
		}
	}
	return rep, nil
}

// Fig12 regenerates Figure 12: throughput per server — households
// processed per second divided by the number of servers.
func Fig12(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	nodes := maxInt(opts.Scale.ClusterNodes)
	n := opts.Scale.BaseConsumers
	rep := &Report{
		ID:      "fig12",
		Title:   fmt.Sprintf("Throughput per server (households/s/server, %d consumers)", n),
		Columns: []string{"task", "colstore (1 server)", "spark (/node)", "hive (/node)"},
		Notes: []string{
			"expected shape: colstore competitive or better per server, especially on histogram",
		},
	}
	srcs, err := opts.makeSources(n, "fig12", true, false)
	if err != nil {
		return nil, err
	}
	colE := colstore.New(filepath.Join(opts.WorkDir, "fig12-col"))
	if _, err := colE.Load(srcs.unpartRPL); err != nil {
		return nil, err
	}
	_, hive, spark, err := clusterPair(nodes, srcs.unpartSPL, nil)
	if err != nil {
		return nil, err
	}
	for _, task := range core.Tasks {
		dCol, err := timeEngine(&opts, colE, core.Spec{Task: task, Workers: 8, Prefetch: opts.Prefetch})
		if err != nil {
			return nil, err
		}
		dSpark, err := timeEngine(&opts, spark, core.Spec{Task: task, Prefetch: opts.Prefetch})
		if err != nil {
			return nil, err
		}
		dHive, err := timeEngine(&opts, hive, core.Spec{Task: task, Prefetch: opts.Prefetch})
		if err != nil {
			return nil, err
		}
		perServer := func(d time.Duration, servers int) string {
			if d <= 0 {
				return "inf"
			}
			return fmt.Sprintf("%.1f", float64(n)/d.Seconds()/float64(servers))
		}
		rep.AddRow(task.String(), perServer(dCol, 1), perServer(dSpark, nodes), perServer(dHive, nodes))
	}
	return rep, nil
}

// formatExecTimes regenerates the execution-time figures for one data
// format (Figure 13 for format 1, Figure 16 for format 2).
func formatExecTimes(opts Options, id, title string, write func(n int) (*meterdata.Source, error)) (*Report, error) {
	nodes := maxInt(opts.Scale.ClusterNodes)
	rep := &Report{
		ID:      id,
		Title:   title,
		Columns: []string{"task", "consumers", "spark", "hive"},
	}
	for _, task := range core.Tasks {
		sweep := opts.Scale.Consumers
		if task == core.TaskSimilarity {
			sweep = opts.Scale.SimilarityConsumers
		}
		for _, n := range sweep {
			src, err := write(n)
			if err != nil {
				return nil, err
			}
			_, hive, spark, err := clusterPair(nodes, src, nil)
			if err != nil {
				return nil, err
			}
			dSpark, err := timeEngine(&opts, spark, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, fmt.Errorf("%s %v spark: %w", id, task, err)
			}
			dHive, err := timeEngine(&opts, hive, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, fmt.Errorf("%s %v hive: %w", id, task, err)
			}
			rep.AddRow(task.String(), fmt.Sprint(n), fmtDur(dSpark), fmtDur(dHive))
		}
	}
	return rep, nil
}

// Fig13 regenerates Figure 13: Spark vs Hive execution times on data
// format 1 (one reading per line; needs a shuffle).
func Fig13(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	rep, err := formatExecTimes(opts, "fig13",
		"Execution times, data format 1 (reading per line, shuffle required)",
		func(n int) (*meterdata.Source, error) {
			srcs, err := opts.makeSources(n, "fig13", false, false)
			if err != nil {
				return nil, err
			}
			return srcs.unpartRPL, nil
		})
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes,
		"expected shape: spark faster on similarity (broadcast join); close elsewhere")
	return rep, nil
}

// Fig16 regenerates Figure 16: Spark vs Hive on data format 2 (one
// series per line; map-only).
func Fig16(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	rep, err := formatExecTimes(opts, "fig16",
		"Execution times, data format 2 (series per line, map-only)",
		func(n int) (*meterdata.Source, error) {
			srcs, err := opts.makeSources(n, "fig16", true, false)
			if err != nil {
				return nil, err
			}
			return srcs.unpartSPL, nil
		})
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes,
		"expected shape: faster than format 1 for 3-line/PAR/histogram (no shuffle); spark and hive close")
	return rep, nil
}

// nodeSweep regenerates the speedup figures (14, 17, 19): execution
// time versus worker-node count, relative to the smallest cluster.
func nodeSweep(opts Options, id, title string, src *meterdata.Source, hiveOpts []mapreduce.Option, tasks []core.Task) (*Report, error) {
	rep := &Report{
		ID:      id,
		Title:   title,
		Columns: []string{"task", "nodes", "spark", "spark speedup", "hive", "hive speedup"},
		Notes:   []string{"speedup is relative to the smallest node count (paper: relative to 4 nodes)"},
	}
	type base struct{ spark, hive time.Duration }
	bases := map[core.Task]base{}
	for _, nodes := range opts.Scale.ClusterNodes {
		_, hive, spark, err := clusterPair(nodes, src, hiveOpts)
		if err != nil {
			return nil, err
		}
		for _, task := range tasks {
			dSpark, err := timeEngine(&opts, spark, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, err
			}
			dHive, err := timeEngine(&opts, hive, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, err
			}
			b, ok := bases[task]
			if !ok {
				b = base{spark: dSpark, hive: dHive}
				bases[task] = b
			}
			rep.AddRow(task.String(), fmt.Sprint(nodes),
				fmtDur(dSpark), fmtSpeedup(b.spark, dSpark),
				fmtDur(dHive), fmtSpeedup(b.hive, dHive))
		}
	}
	return rep, nil
}

// Fig14 regenerates Figure 14: speedup vs node count on format 1.
func Fig14(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	srcs, err := opts.makeSources(opts.Scale.BaseConsumers, "fig14", false, false)
	if err != nil {
		return nil, err
	}
	return nodeSweep(opts, "fig14", "Speedup with cluster size, data format 1",
		srcs.unpartRPL, nil, core.Tasks)
}

// Fig15 regenerates Figure 15: cluster memory consumption of Spark and
// Hive as data grows (format 1), from the simulator's per-node
// accounting.
func Fig15(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	nodes := maxInt(opts.Scale.ClusterNodes)
	rep := &Report{
		ID:      "fig15",
		Title:   "Cluster memory consumption (peak accounted bytes, data format 1)",
		Columns: []string{"task", "consumers", "spark", "hive"},
		Notes:   []string{"expected shape: spark uses more memory than hive, gap grows with data size"},
	}
	for _, task := range []core.Task{core.TaskThreeLine, core.TaskPAR, core.TaskHistogram, core.TaskSimilarity} {
		sweep := opts.Scale.Consumers
		if task == core.TaskSimilarity {
			sweep = opts.Scale.SimilarityConsumers
		}
		for _, n := range sweep {
			srcs, err := opts.makeSources(n, "fig15", false, false)
			if err != nil {
				return nil, err
			}
			fsys, hive, spark, err := clusterPair(nodes, srcs.unpartRPL, nil)
			if err != nil {
				return nil, err
			}
			cluster := fsys.Cluster()
			cluster.ResetStats()
			if _, err := opts.run(spark, core.Spec{Task: task, Prefetch: opts.Prefetch}); err != nil {
				return nil, err
			}
			sparkMem := cluster.Stats().PeakMemory()
			cluster.ResetStats()
			if _, err := opts.run(hive, core.Spec{Task: task, Prefetch: opts.Prefetch}); err != nil {
				return nil, err
			}
			hiveMem := cluster.Stats().PeakMemory()
			rep.AddRow(task.String(), fmt.Sprint(n), fmtMB(sparkMem), fmtMB(hiveMem))
		}
	}
	return rep, nil
}

// Fig17 regenerates Figure 17: speedup vs node count on format 2.
func Fig17(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	srcs, err := opts.makeSources(opts.Scale.BaseConsumers, "fig17", true, false)
	if err != nil {
		return nil, err
	}
	return nodeSweep(opts, "fig17", "Speedup with cluster size, data format 2 (map-only)",
		srcs.unpartSPL, nil, core.Tasks)
}

// Fig18 regenerates Figure 18: data format 3 — many whole-household
// files — comparing Hive's UDTF (map-side aggregation) against Hive's
// UDAF (reduce) and Spark, sweeping the file count.
func Fig18(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	nodes := maxInt(opts.Scale.ClusterNodes)
	rep := &Report{
		ID:      "fig18",
		Title:   "Execution times, data format 3 (whole-household files)",
		Columns: []string{"task", "files", "spark", "hive UDTF", "hive UDAF"},
		Notes: []string{
			"expected shape: hive UDTF fastest (map-only); hive insensitive to file count; spark degrades as files grow",
			"similarity is omitted, as in the paper (pairwise distances cannot be one UDTF pass)",
		},
	}
	// The dataset must hold at least as many consumers as the largest
	// file count, or WriteGrouped clamps the sweep.
	consumers := opts.Scale.BaseConsumers
	if m := maxInt(opts.Scale.FileCounts); m > consumers {
		consumers = m
	}
	ds, err := opts.makeDataset(consumers)
	if err != nil {
		return nil, err
	}
	for _, task := range []core.Task{core.TaskThreeLine, core.TaskPAR, core.TaskHistogram} {
		for _, files := range opts.Scale.FileCounts {
			dir := filepath.Join(opts.WorkDir, fmt.Sprintf("fig18-%v-%d", task, files))
			src, err := meterdata.WriteGrouped(dir, ds, files)
			if err != nil {
				return nil, err
			}
			_, hiveUDTF, spark, err := clusterPair(nodes, src, []mapreduce.Option{mapreduce.WithStyle(mapreduce.StyleUDTF)})
			if err != nil {
				return nil, err
			}
			dSpark, err := timeEngine(&opts, spark, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, err
			}
			dUDTF, err := timeEngine(&opts, hiveUDTF, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, err
			}
			_, hiveUDAF, _, err := clusterPair(nodes, src, []mapreduce.Option{mapreduce.WithStyle(mapreduce.StyleUDAF)})
			if err != nil {
				return nil, err
			}
			dUDAF, err := timeEngine(&opts, hiveUDAF, core.Spec{Task: task, Prefetch: opts.Prefetch})
			if err != nil {
				return nil, err
			}
			rep.AddRow(task.String(), fmt.Sprint(files), fmtDur(dSpark), fmtDur(dUDTF), fmtDur(dUDAF))
		}
	}
	return rep, nil
}

// Fig19 regenerates Figure 19: speedup vs node count on format 3
// (UDTF plan).
func Fig19(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	// Use the middle file count: enough files that every node sweep point
	// can fill its task slots (10 non-splittable files could never use
	// more than 10 slots, hiding any scaling).
	files := opts.Scale.FileCounts[len(opts.Scale.FileCounts)/2]
	consumers := opts.Scale.BaseConsumers
	if files > consumers {
		consumers = files
	}
	ds, err := opts.makeDataset(consumers)
	if err != nil {
		return nil, err
	}
	src, err := meterdata.WriteGrouped(filepath.Join(opts.WorkDir, "fig19"), ds, files)
	if err != nil {
		return nil, err
	}
	return nodeSweep(opts, "fig19",
		fmt.Sprintf("Speedup with cluster size, data format 3 (%d files, UDTF)", files),
		src, []mapreduce.Option{mapreduce.WithStyle(mapreduce.StyleUDTF)},
		[]core.Task{core.TaskThreeLine, core.TaskPAR, core.TaskHistogram})
}

// TaskSweep regenerates the paper's footnote 8 observation: Hive
// benefits from more reduce tasks up to a point, while Spark is largely
// insensitive to its partition count.
func TaskSweep(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	nodes := maxInt(opts.Scale.ClusterNodes)
	srcs, err := opts.makeSources(opts.Scale.BaseConsumers, "tasksweep", false, false)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "tasksweep",
		Title:   "Reduce-task count sweep (3-line, data format 1)",
		Columns: []string{"reduce tasks", "hive"},
		Notes:   []string{"expected shape: time falls as tasks grow toward the slot count, then flattens"},
	}
	for _, reducers := range []int{1, 2, nodes, nodes * 4} {
		_, hive, _, err := clusterPair(nodes, srcs.unpartRPL,
			[]mapreduce.Option{mapreduce.WithReducers(reducers)})
		if err != nil {
			return nil, err
		}
		d, err := timeEngine(&opts, hive, core.Spec{Task: core.TaskThreeLine, Prefetch: opts.Prefetch})
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprint(reducers), fmtDur(d))
	}
	return rep, nil
}

func maxInt(xs []int) int {
	if len(xs) == 0 {
		return 4
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
