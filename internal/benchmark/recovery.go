package benchmark

import (
	"context"
	"fmt"
	"io/fs"
	"path/filepath"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/rowstore"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// Recovery measures crash recovery under the write-ahead log: each
// append-driven engine bulk-loads a base, ingests a live tail with the
// log armed, then dies mid-flight (every file handle dropped, no
// flush). The reported recovery time is crash-to-first-answer: reopen
// the directory, replay the log through the idempotent append path and
// run a histogram over a snapshot — which the experiment verifies holds
// every acked reading. The wal policy comes from Options.WAL ("batch"
// when unset; "off" is rejected because there is nothing to recover).
func Recovery(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if opts.WAL == "off" {
		return nil, fmt.Errorf("benchmark: recovery needs a write-ahead log; -wal off has nothing to replay")
	}
	policy := wal.SyncBatch
	if opts.WAL == "always" {
		policy = wal.SyncAlways
	}
	n := opts.Scale.BaseConsumers
	srcs, err := opts.makeSources(n, "recovery", false, false)
	if err != nil {
		return nil, err
	}
	live, err := seed.Generate(seed.Config{
		Consumers: n, Days: ingestDays, Seed: opts.Seed + 3000,
	})
	if err != nil {
		return nil, err
	}
	baseHours := opts.Scale.Days * timeseries.HoursPerDay
	liveHours := ingestDays * timeseries.HoursPerDay
	records := int64(liveHours) * int64(n)

	rep := &Report{
		ID: "recovery",
		Title: fmt.Sprintf("Crash recovery: %d consumers, %d live hours in the wal=%s log",
			n, liveHours, walModeName(policy)),
		Columns: []string{"engine", "wal size", "replayed", "recovery time", "replay records/s"},
		Notes: []string{
			"crash model: every handle dropped with no flush after the live tail was acked",
			"recovery time = reopen + log replay + first histogram answer over a verified snapshot",
			"the snapshot after recovery must hold every acked reading (base + live) — checked per household",
		},
	}

	type crashEngine interface {
		liveEngine
		Crash()
	}
	for _, name := range []string{"colstore (System C)", "rowstore (MADLib)"} {
		dir := filepath.Join(opts.WorkDir, "recovery-"+name[:3])
		var eng crashEngine
		if name[:3] == "col" {
			eng = colstore.New(dir, colstore.WithWAL(policy))
		} else {
			eng = rowstore.New(dir, rowstore.WithWAL(policy))
		}
		if _, err := eng.Load(srcs.unpartRPL); err != nil {
			return nil, err
		}
		if err := ingestConcurrently(eng, live, baseHours); err != nil {
			return nil, fmt.Errorf("recovery %s: %w", name, err)
		}
		walBytes, err := dirSize(filepath.Join(dir, "wal"))
		if err != nil {
			return nil, fmt.Errorf("recovery %s: %w", name, err)
		}
		eng.Crash()

		var res *core.Results
		d, err := Timed(func() error {
			var re liveEngine
			if name[:3] == "col" {
				ce := colstore.New(dir, colstore.WithWAL(policy))
				if _, err := ce.OpenExisting(); err != nil {
					_ = ce.Release()
					return err
				}
				re = ce
			} else {
				rse := rowstore.New(dir, rowstore.WithWAL(policy))
				if err := rse.Open(); err != nil {
					_ = rse.Close()
					return err
				}
				re = rse
			}
			var rerr error
			res, _, rerr = exec.RunSnapshot(context.Background(), re,
				core.Spec{Task: core.TaskHistogram, Workers: ingestWriters, Prefetch: opts.Prefetch})
			if rerr != nil {
				return rerr
			}
			return releaseLiveEngine(re)
		})
		if err != nil {
			return nil, fmt.Errorf("recovery %s: %w", name, err)
		}
		wantTotal := int64(baseHours + liveHours)
		if len(res.Histograms) != n {
			return nil, fmt.Errorf("recovery %s: snapshot saw %d consumers, want %d", name, len(res.Histograms), n)
		}
		for _, h := range res.Histograms {
			if h.Histogram.Total() != wantTotal {
				return nil, fmt.Errorf("recovery %s: consumer %d recovered %d readings, want %d",
					name, h.ID, h.Histogram.Total(), wantTotal)
			}
		}
		rep.AddRow(name,
			fmt.Sprintf("%.1f KiB", float64(walBytes)/1024),
			fmt.Sprint(records),
			fmtDur(d),
			fmt.Sprintf("%.0f", float64(records)/d.Seconds()))
	}
	return rep, nil
}

// walModeName renders a policy the way the -wal flag spells it.
func walModeName(p wal.SyncPolicy) string {
	if p == wal.SyncAlways {
		return "always"
	}
	return "batch"
}

// dirSize sums the file sizes under dir.
func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total, err
}
