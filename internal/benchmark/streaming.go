package benchmark

import (
	"fmt"
	"math/rand"

	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/stream"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Streaming regenerates the paper's §6 future-work scenario as a
// measurable experiment: train per-household profiles on one weather
// year, stream a second year with injected anomalies, and report
// training time, stream throughput, detection recall and false-positive
// rate for both detectors.
func Streaming(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	n := opts.Scale.BaseConsumers
	train, live, err := seed.GeneratePair(
		seed.Config{Consumers: n, Days: opts.Scale.Days, Seed: opts.Seed}, opts.Seed+77)
	if err != nil {
		return nil, err
	}
	// Inject anomalies: one gross spike per ~20 households, at least 3.
	nAnom := n / 20
	if nAnom < 3 {
		nAnom = 3
	}
	rng := rand.New(rand.NewSource(opts.Seed + 5))
	type anomaly struct {
		id   timeseries.ID
		hour int
	}
	anomalies := make([]anomaly, 0, nAnom)
	for i := 0; i < nAnom; i++ {
		s := live.Series[rng.Intn(len(live.Series))]
		h := rng.Intn(len(s.Readings))
		s.Readings[h] += 40
		anomalies = append(anomalies, anomaly{id: s.ID, hour: h})
	}

	rep := &Report{
		ID:      "streaming",
		Title:   fmt.Sprintf("Streaming anomaly alerts (%d households, 1 year train + 1 year stream)", n),
		Columns: []string{"detector", "train", "stream", "events/s", "recall", "false alarms"},
		Notes: []string{
			"paper §6 future work: real-time alerts on unusual readings via stream processing",
			"expected shape: profile detector catches all injected spikes with a tiny false-alarm rate",
		},
	}

	profileFactory := func() (stream.NewDetector, error) {
		profiles, err := stream.TrainProfiles(train, 6)
		if err != nil {
			return nil, err
		}
		return stream.NewProfileDetector(profiles), nil
	}
	sigmaFactory := func() (stream.NewDetector, error) {
		return stream.NewSigmaDetector(6, 7), nil
	}
	for _, d := range []struct {
		name    string
		factory func() (stream.NewDetector, error)
	}{
		{"profile (PAR + 3-line)", profileFactory},
		{"sigma (online mean/std)", sigmaFactory},
	} {
		var nd stream.NewDetector
		trainDur, err := Timed(func() error {
			var err error
			nd, err = d.factory()
			return err
		})
		if err != nil {
			return nil, err
		}
		proc, err := stream.NewProcessor(nd, 4)
		if err != nil {
			return nil, err
		}
		events := make(chan stream.Event, 4096)
		alerts := make(chan stream.Alert, 4096)
		caught := map[int]bool{}
		var falseAlarms int64
		streamDur, err := Timed(func() error {
			go stream.Replay(live, events)
			done := make(chan error, 1)
			go func() { done <- proc.Run(events, alerts) }()
			for a := range alerts {
				hit := false
				for i, an := range anomalies {
					if an.id == a.Event.ID && an.hour == a.Event.Hour {
						caught[i] = true
						hit = true
					}
				}
				if !hit {
					falseAlarms++
				}
			}
			return <-done
		})
		if err != nil {
			return nil, err
		}
		processed, _ := proc.Stats()
		rep.AddRow(d.name, fmtDur(trainDur), fmtDur(streamDur),
			fmtRate(int(processed), streamDur),
			fmt.Sprintf("%d/%d", len(caught), len(anomalies)),
			fmt.Sprintf("%d (%.4f%%)", falseAlarms, 100*float64(falseAlarms)/float64(processed)))
	}
	return rep, nil
}
