package benchmark

import (
	"context"
	"fmt"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/fault"
)

// faultRates is the injected per-consumer fault probability sweep. Each
// rate is split across transient, permanent and corrupt faults; 0 is
// the containment-overhead baseline.
var faultRates = []float64{0, 0.02, 0.05, 0.10}

// Faults measures throughput versus injected fault rate per engine: the
// price of per-consumer failure containment. Faulty consumers are
// quarantined (or repaired under -failpolicy repair); survivors still
// produce results, so throughput degrades with the surviving-consumer
// count rather than collapsing to zero the way fail-fast would.
func Faults(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	n := opts.Scale.BaseConsumers
	srcs, err := opts.makeSources(n, "faults", false, true)
	if err != nil {
		return nil, err
	}
	policy := opts.FailPolicy
	if policy == core.FailFast {
		// Fail-fast would abort on the first injected fault; the sweep
		// needs containment to have anything to measure.
		policy = core.Quarantine
	}
	rep := &Report{
		ID:      "faults",
		Title:   fmt.Sprintf("Throughput vs injected fault rate (%d consumers, 3-line, %v)", n, policy),
		Columns: []string{"engine", "rate", "time", "failed", "households/s"},
		Notes: []string{
			"expected shape: rate 0 within a few percent of an uninjected run; throughput decays with the surviving-consumer count",
			"failed counts the quarantined consumers; survivors produce bit-identical results",
		},
	}

	type engineCase struct {
		name string
		src  exec.Source
	}
	fileE, rowE, colE := singleNodeEngines(&opts, "faults")
	defer rowE.Close()
	if _, err := fileE.Load(srcs.part); err != nil {
		return nil, err
	}
	if _, err := rowE.Load(srcs.unpartRPL); err != nil {
		return nil, err
	}
	if _, err := colE.Load(srcs.unpartRPL); err != nil {
		return nil, err
	}
	cases := []engineCase{
		{"filestore", fileE},
		{"rowstore", rowE},
		{"colstore", colE},
	}
	nodes := maxInt(opts.Scale.ClusterNodes)
	if nodes > 0 {
		_, hive, spark, err := clusterPair(nodes, srcs.unpartRPL, nil)
		if err != nil {
			return nil, err
		}
		cases = append(cases, engineCase{"spark", spark}, engineCase{"hive", hive})
	}

	for _, ec := range cases {
		for _, rate := range faultRates {
			cfg := fault.Config{
				Seed:      uint64(opts.Seed),
				Transient: rate / 2,
				Permanent: rate / 4,
				Corrupt:   rate / 4,
			}
			var failed int
			d, err := Timed(func() error {
				ctx := context.Background()
				if opts.Timeout > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
					defer cancel()
				}
				res, err := exec.RunContext(ctx, fault.New(ec.src, cfg), core.Spec{
					Task:       core.TaskThreeLine,
					FailPolicy: policy,
					Prefetch:   opts.Prefetch,
				})
				if err != nil {
					return err
				}
				failed = len(res.Failed)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("faults %s rate=%.2f: %w", ec.name, rate, err)
			}
			rep.AddRow(ec.name, fmt.Sprintf("%.2f", rate), fmtDur(d), fmt.Sprint(failed), fmtRate(n-failed, d))
		}
	}
	return rep, nil
}
