package timeseries

import (
	"math/rand"
	"sort"
	"testing"
)

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3)
	for i, score := range []float64{0.1, 0.9, 0.5, 0.7, 0.3} {
		tk.Add(ID(i), score)
	}
	got := tk.Results()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	wantScores := []float64{0.9, 0.7, 0.5}
	wantIDs := []ID{1, 3, 2}
	for i := range wantScores {
		if got[i].Score != wantScores[i] || got[i].ID != wantIDs[i] {
			t.Errorf("result %d = %+v, want {%d %g}", i, got[i], wantIDs[i], wantScores[i])
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Add(1, 0.5)
	tk.Add(2, 0.8)
	got := tk.Results()
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Errorf("results = %+v", got)
	}
	if tk.Len() != 2 {
		t.Errorf("Len = %d", tk.Len())
	}
}

func TestTopKTieBreaksTowardLowerID(t *testing.T) {
	tk := NewTopK(2)
	tk.Add(5, 0.5)
	tk.Add(3, 0.5)
	tk.Add(9, 0.5)
	got := tk.Results()
	if got[0].ID != 3 || got[1].ID != 5 {
		t.Errorf("tie break results = %+v", got)
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopK(0) should panic")
		}
	}()
	NewTopK(0)
}

func TestTopKMatchesSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(300) + 1
		k := rng.Intn(20) + 1
		type cand struct {
			id    ID
			score float64
		}
		cands := make([]cand, n)
		tk := NewTopK(k)
		for i := range cands {
			cands[i] = cand{id: ID(i), score: float64(rng.Intn(50))} // force ties
			tk.Add(cands[i].id, cands[i].score)
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].id < cands[j].id
		})
		want := cands
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].id || got[i].Score != want[i].score {
				t.Fatalf("trial %d pos %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
