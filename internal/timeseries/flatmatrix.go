package timeseries

import (
	"errors"
	"fmt"

	"github.com/smartmeter/smartbench/internal/stats"
)

// FlatMatrix is a dense, read-only view of n equal-length series packed
// into one contiguous row-major []float64, with each row's inverse L2
// norm precomputed. It is the input format of the blocked similarity
// kernel (stats.CosineTile): one flat buffer keeps the O(n²) scan
// sequential in memory instead of pointer-chasing per-series slices.
//
// The matrix is a snapshot: callers must not mutate the underlying
// readings while holding it (when the packing is shared with the source
// series, mutations would also desynchronize the cached norms).
type FlatMatrix struct {
	n, length int
	data      []float64 // n*length values, row i = series i
	invNorms  []float64 // 1/||row i||, 0 for a zero-norm row
	ids       []ID
	shared    bool // data aliases the source series' storage
}

// ErrRaggedMatrix is returned by PackMatrix when the series do not all
// have the same length.
var ErrRaggedMatrix = errors.New("timeseries: series lengths differ")

// PackMatrix builds a FlatMatrix over the given series. When the series
// are already one contiguous row-major buffer (the column store decodes
// its segment image that way), the buffer is adopted zero-copy;
// otherwise the readings are copied into a fresh packing. Series of
// length zero are rejected, as are ragged lengths.
func PackMatrix(series []*Series) (*FlatMatrix, error) {
	n := len(series)
	if n == 0 {
		return nil, errors.New("timeseries: PackMatrix needs at least one series")
	}
	length := len(series[0].Readings)
	if length == 0 {
		return nil, fmt.Errorf("timeseries: PackMatrix: series %d has no readings", series[0].ID)
	}
	for _, s := range series {
		if len(s.Readings) != length {
			return nil, fmt.Errorf("%w: series %d has %d readings, series %d has %d",
				ErrRaggedMatrix, s.ID, len(s.Readings), series[0].ID, length)
		}
	}

	m := &FlatMatrix{n: n, length: length, ids: make([]ID, n)}
	for i, s := range series {
		m.ids[i] = s.ID
	}
	if base := contiguousBacking(series, length); base != nil {
		m.data = base
		m.shared = true
	} else {
		m.data = make([]float64, n*length)
		for i, s := range series {
			copy(m.data[i*length:(i+1)*length], s.Readings)
		}
	}
	m.invNorms = make([]float64, n)
	for i := 0; i < n; i++ {
		if nm := stats.Norm(m.data[i*length : (i+1)*length]); !stats.IsZero(nm) {
			m.invNorms[i] = 1 / nm
		}
	}
	return m, nil
}

// contiguousBacking returns the shared row-major buffer behind the
// series, or nil if they are not laid out back-to-back in one
// allocation. The check is pure pointer identity on the first element
// of every row against the first row's extended slice, so it never
// reads past what the caller actually allocated.
func contiguousBacking(series []*Series, length int) []float64 {
	total := len(series) * length
	first := series[0].Readings
	if cap(first) < total {
		return nil
	}
	base := first[:total]
	for i, s := range series {
		if &s.Readings[0] != &base[i*length] {
			return nil
		}
	}
	return base
}

// N returns the number of rows (series).
func (m *FlatMatrix) N() int { return m.n }

// Len returns the row length (readings per series).
func (m *FlatMatrix) Len() int { return m.length }

// Row returns row i as a view of the packed buffer.
func (m *FlatMatrix) Row(i int) []float64 { return m.data[i*m.length : (i+1)*m.length] }

// ID returns the household ID of row i.
func (m *FlatMatrix) ID(i int) ID { return m.ids[i] }

// InvNorm returns the precomputed inverse norm of row i (0 for a
// zero-norm row, so cosine scores against it come out 0).
func (m *FlatMatrix) InvNorm(i int) float64 { return m.invNorms[i] }

// Data returns the full row-major packing (read-only by convention).
func (m *FlatMatrix) Data() []float64 { return m.data }

// InvNorms returns the per-row inverse norms (read-only by convention).
func (m *FlatMatrix) InvNorms() []float64 { return m.invNorms }

// Shared reports whether the packing aliases the source series'
// storage (zero-copy) rather than owning a private copy.
func (m *FlatMatrix) Shared() bool { return m.shared }

// Flat returns the dataset packed as a FlatMatrix, building it on first
// use and caching it for subsequent calls. Engines drop their decoded
// dataset on Release, which drops the cached packing with it; callers
// that mutate readings in place must call ReleaseFlat to invalidate the
// cache (the engines' Append paths build fresh datasets instead).
func (d *Dataset) Flat() (*FlatMatrix, error) {
	d.flatMu.Lock()
	defer d.flatMu.Unlock()
	if d.flat == nil {
		m, err := PackMatrix(d.Series)
		if err != nil {
			return nil, err
		}
		d.flat = m
	}
	return d.flat, nil
}

// ReleaseFlat drops the cached packing built by Flat.
func (d *Dataset) ReleaseFlat() {
	d.flatMu.Lock()
	d.flat = nil
	d.flatMu.Unlock()
}
