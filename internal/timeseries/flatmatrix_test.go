package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/smartmeter/smartbench/internal/stats"
)

func flatTestSeries(rng *rand.Rand, n, length int) []*Series {
	out := make([]*Series, n)
	for i := range out {
		r := make([]float64, length)
		for j := range r {
			r[j] = rng.Float64() * 3
		}
		out[i] = &Series{ID: ID(i + 1), Readings: r}
	}
	return out
}

func TestPackMatrixCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := flatTestSeries(rng, 5, 26)
	m, err := PackMatrix(series)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shared() {
		t.Error("independently allocated series reported as shared backing")
	}
	if m.N() != 5 || m.Len() != 26 {
		t.Fatalf("shape = %dx%d", m.N(), m.Len())
	}
	for i, s := range series {
		if m.ID(i) != s.ID {
			t.Errorf("row %d ID = %d, want %d", i, m.ID(i), s.ID)
		}
		row := m.Row(i)
		for j, v := range s.Readings {
			if !stats.ExactEqual(row[j], v) {
				t.Fatalf("row %d[%d] = %g, want %g", i, j, row[j], v)
			}
		}
		want := stats.Norm(s.Readings)
		if math.Abs(m.InvNorm(i)*want-1) > 1e-12 {
			t.Errorf("row %d inverse norm %g for norm %g", i, m.InvNorm(i), want)
		}
	}
}

// TestPackMatrixZeroCopy pins the contiguous fast path: series that are
// back-to-back subslices of one buffer (the column store's decoded
// layout) must be adopted without copying.
func TestPackMatrixZeroCopy(t *testing.T) {
	const n, length = 4, 24
	buf := make([]float64, n*length)
	rng := rand.New(rand.NewSource(2))
	for i := range buf {
		buf[i] = rng.Float64()
	}
	series := make([]*Series, n)
	for i := range series {
		series[i] = &Series{ID: ID(i + 1), Readings: buf[i*length : (i+1)*length]}
	}
	m, err := PackMatrix(series)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Shared() {
		t.Fatal("contiguous series not adopted zero-copy")
	}
	if &m.Data()[0] != &buf[0] {
		t.Error("shared packing does not alias the source buffer")
	}
	// Rows sliced from the same buffer in reverse order are NOT row-major
	// contiguous and must be copied.
	rev := make([]*Series, n)
	for i := range rev {
		rev[i] = series[n-1-i]
	}
	mr, err := PackMatrix(rev)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Shared() {
		t.Error("reversed rows wrongly adopted as shared backing")
	}
}

func TestPackMatrixErrors(t *testing.T) {
	if _, err := PackMatrix(nil); err == nil {
		t.Error("empty slice: want error")
	}
	empty := []*Series{{ID: 1, Readings: nil}}
	if _, err := PackMatrix(empty); err == nil {
		t.Error("zero-length series: want error")
	}
	rng := rand.New(rand.NewSource(3))
	ragged := flatTestSeries(rng, 3, 24)
	ragged[2].Readings = ragged[2].Readings[:12]
	if _, err := PackMatrix(ragged); !errors.Is(err, ErrRaggedMatrix) {
		t.Errorf("ragged: err = %v, want ErrRaggedMatrix", err)
	}
}

func TestPackMatrixZeroNormRow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	series := flatTestSeries(rng, 3, 24)
	for j := range series[1].Readings {
		series[1].Readings[j] = 0
	}
	m, err := PackMatrix(series)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IsZero(m.InvNorm(1)) {
		t.Errorf("zero-norm row inverse norm = %g, want 0", m.InvNorm(1))
	}
	if stats.IsZero(m.InvNorm(0)) {
		t.Error("nonzero row got zero inverse norm")
	}
}

// TestDatasetFlatCaches verifies the dataset memoizes its packing and
// that ReleaseFlat invalidates it.
func TestDatasetFlatCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := &Dataset{Series: flatTestSeries(rng, 4, 24),
		Temperature: &Temperature{Values: make([]float64, 24)}}
	m1, err := d.Flat()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := d.Flat()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("Flat rebuilt the packing on the second call")
	}
	d.ReleaseFlat()
	m3, err := d.Flat()
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("ReleaseFlat did not drop the cached packing")
	}
}

// TestDatasetFlatConcurrent hammers the memoization from several
// goroutines (race-detector coverage for the flatMu critical section).
func TestDatasetFlatConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := &Dataset{Series: flatTestSeries(rng, 8, 24),
		Temperature: &Temperature{Values: make([]float64, 24)}}
	const callers = 8
	ms := make([]*FlatMatrix, callers)
	errs := make([]error, callers)
	done := make(chan int, callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			ms[c], errs[c] = d.Flat()
			done <- c
		}(c)
	}
	for c := 0; c < callers; c++ {
		<-done
	}
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatal(errs[c])
		}
		if ms[c] != ms[0] {
			t.Error("concurrent Flat calls returned different packings")
		}
	}
}
