package timeseries

import (
	"container/heap"
	"sort"

	"github.com/smartmeter/smartbench/internal/stats"
)

// Match is one similarity-search result: the matched consumer and the
// cosine similarity score.
type Match struct {
	ID    ID
	Score float64
}

// TopK maintains the k best-scoring matches seen so far using a min-heap,
// so inserting n candidates costs O(n log k). Ties are broken toward the
// lower ID for deterministic output.
type TopK struct {
	k int
	h matchHeap
}

// NewTopK returns a collector for the k best matches. k must be positive.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("timeseries: TopK requires k > 0")
	}
	return &TopK{k: k}
}

// Add offers a candidate match.
func (t *TopK) Add(id ID, score float64) {
	if len(t.h) < t.k {
		heap.Push(&t.h, Match{ID: id, Score: score})
		return
	}
	if worse(Match{ID: id, Score: score}, t.h[0]) {
		return
	}
	t.h[0] = Match{ID: id, Score: score}
	heap.Fix(&t.h, 0)
}

// Len returns the number of matches currently held (<= k).
func (t *TopK) Len() int { return len(t.h) }

// Results returns the collected matches ordered best-first.
func (t *TopK) Results() []Match {
	out := make([]Match, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}

// worse reports whether a ranks strictly below b (lower score, or equal
// score with a higher ID).
func worse(a, b Match) bool {
	if !stats.ExactEqual(a.Score, b.Score) {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

type matchHeap []Match

func (h matchHeap) Len() int            { return len(h) }
func (h matchHeap) Less(i, j int) bool  { return worse(h[i], h[j]) }
func (h matchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x interface{}) { *h = append(*h, x.(Match)) }
func (h *matchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
