// Package timeseries defines the core data model of the benchmark: one
// year of hourly electricity consumption per consumer, plus the matching
// outdoor temperature series, and the vector operations (cosine
// similarity, top-k) used by the similarity-search task.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/smartmeter/smartbench/internal/stats"
)

// HoursPerDay is the number of readings per day.
const HoursPerDay = 24

// DaysPerYear is the number of days covered by a benchmark series.
const DaysPerYear = 365

// HoursPerYear is the canonical series length in the paper
// (365 x 24 = 8760 hourly readings).
const HoursPerYear = DaysPerYear * HoursPerDay

// ErrBadLength is returned when a series is not a whole number of days.
var ErrBadLength = errors.New("timeseries: length is not a multiple of 24")

// ID identifies a household (consumer).
type ID int64

// Series is one consumer's hourly consumption readings in kWh.
// Index i is hour i since the start of the covered period; hour-of-day is
// i % 24 and day index is i / 24.
type Series struct {
	ID       ID
	Readings []float64
}

// Days returns the number of whole days covered.
func (s *Series) Days() int { return len(s.Readings) / HoursPerDay }

// Validate checks that the series is a positive whole number of days of
// finite, non-negative readings.
func (s *Series) Validate() error {
	if len(s.Readings) == 0 {
		return fmt.Errorf("timeseries: series %d is empty", s.ID)
	}
	if len(s.Readings)%HoursPerDay != 0 {
		return fmt.Errorf("%w: series %d has %d readings", ErrBadLength, s.ID, len(s.Readings))
	}
	for i, r := range s.Readings {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("timeseries: series %d reading %d is not finite", s.ID, i)
		}
		if r < 0 {
			return fmt.Errorf("timeseries: series %d reading %d is negative (%g)", s.ID, i, r)
		}
	}
	return nil
}

// At returns the reading for the given day and hour-of-day.
func (s *Series) At(day, hour int) float64 {
	return s.Readings[day*HoursPerDay+hour]
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	return &Series{ID: s.ID, Readings: append([]float64(nil), s.Readings...)}
}

// Temperature is the hourly outdoor temperature (degrees Celsius) aligned
// with consumption series: Values[i] is the temperature at hour i.
type Temperature struct {
	Values []float64
}

// Validate checks the temperature series covers a positive whole number of
// days of finite values in a physically plausible range.
func (t *Temperature) Validate() error {
	if len(t.Values) == 0 {
		return errors.New("timeseries: temperature series is empty")
	}
	if len(t.Values)%HoursPerDay != 0 {
		return fmt.Errorf("%w: temperature has %d values", ErrBadLength, len(t.Values))
	}
	for i, v := range t.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("timeseries: temperature %d is not finite", i)
		}
		if v < -90 || v > 60 {
			return fmt.Errorf("timeseries: temperature %d (%g C) outside [-90, 60]", i, v)
		}
	}
	return nil
}

// CosineSimilarity returns the cosine similarity between two equal-length
// vectors: x.y / (||x|| * ||y||). It returns 0 when either vector has zero
// norm (a flat, all-zero consumer is similar to nothing).
func CosineSimilarity(x, y []float64) (float64, error) {
	dot, err := stats.Dot(x, y)
	if err != nil {
		return 0, err
	}
	nx, ny := stats.Norm(x), stats.Norm(y)
	if stats.IsZero(nx) || stats.IsZero(ny) {
		return 0, nil
	}
	return dot / (nx * ny), nil
}

// Dataset is an in-memory collection of consumption series that share one
// temperature series (the paper obtains all consumers from a single city).
type Dataset struct {
	Series      []*Series
	Temperature *Temperature

	// flatMu guards flat, the lazily built packed view (see Flat).
	flatMu sync.Mutex
	flat   *FlatMatrix
}

// Validate checks every series, the temperature series, and that lengths
// agree.
func (d *Dataset) Validate() error {
	if len(d.Series) == 0 {
		return errors.New("timeseries: dataset has no series")
	}
	if d.Temperature == nil {
		return errors.New("timeseries: dataset has no temperature series")
	}
	if err := d.Temperature.Validate(); err != nil {
		return err
	}
	want := len(d.Temperature.Values)
	for _, s := range d.Series {
		if err := s.Validate(); err != nil {
			return err
		}
		if len(s.Readings) != want {
			return fmt.Errorf("timeseries: series %d has %d readings, temperature has %d",
				s.ID, len(s.Readings), want)
		}
	}
	return nil
}

// ByID returns the series with the given ID, or nil if absent.
func (d *Dataset) ByID(id ID) *Series {
	for _, s := range d.Series {
		if s.ID == id {
			return s
		}
	}
	return nil
}
