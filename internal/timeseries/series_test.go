package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func validSeries(id ID, days int, fill float64) *Series {
	r := make([]float64, days*HoursPerDay)
	for i := range r {
		r[i] = fill
	}
	return &Series{ID: id, Readings: r}
}

func TestSeriesValidate(t *testing.T) {
	s := validSeries(1, 2, 1.5)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid series: %v", err)
	}
	if s.Days() != 2 {
		t.Errorf("Days = %d", s.Days())
	}

	empty := &Series{ID: 2}
	if err := empty.Validate(); err == nil {
		t.Error("empty: want error")
	}
	ragged := &Series{ID: 3, Readings: make([]float64, 25)}
	if err := ragged.Validate(); err == nil {
		t.Error("non-multiple of 24: want error")
	}
	neg := validSeries(4, 1, 1)
	neg.Readings[5] = -0.1
	if err := neg.Validate(); err == nil {
		t.Error("negative reading: want error")
	}
	nan := validSeries(5, 1, 1)
	nan.Readings[0] = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Error("NaN reading: want error")
	}
}

func TestSeriesAtAndClone(t *testing.T) {
	s := validSeries(1, 2, 0)
	s.Readings[1*HoursPerDay+5] = 7
	if s.At(1, 5) != 7 {
		t.Errorf("At(1,5) = %g", s.At(1, 5))
	}
	c := s.Clone()
	c.Readings[0] = 99
	if s.Readings[0] == 99 {
		t.Error("Clone shares storage")
	}
	if c.ID != s.ID {
		t.Error("Clone lost ID")
	}
}

func TestTemperatureValidate(t *testing.T) {
	temp := &Temperature{Values: make([]float64, 48)}
	if err := temp.Validate(); err != nil {
		t.Fatalf("valid temperature: %v", err)
	}
	if err := (&Temperature{}).Validate(); err == nil {
		t.Error("empty: want error")
	}
	if err := (&Temperature{Values: make([]float64, 23)}).Validate(); err == nil {
		t.Error("bad length: want error")
	}
	hot := &Temperature{Values: make([]float64, 24)}
	hot.Values[0] = 100
	if err := hot.Validate(); err == nil {
		t.Error("implausible temperature: want error")
	}
	nan := &Temperature{Values: make([]float64, 24)}
	nan.Values[3] = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Error("NaN temperature: want error")
	}
}

func TestCosineSimilarityKnownValues(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 0}, []float64{-1, 0}, -1},
		{[]float64{1, 2, 3}, []float64{2, 4, 6}, 1},
		{[]float64{0, 0}, []float64{1, 1}, 0}, // zero-norm convention
	}
	for _, c := range cases {
		got, err := CosineSimilarity(c.x, c.y)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("cos(%v, %v) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
	if _, err := CosineSimilarity([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
}

// Properties of cosine similarity: symmetric, bounded in [-1,1],
// scale-invariant, and cos(x,x)=1 for non-zero x.
func TestCosineSimilarityPropertiesQuick(t *testing.T) {
	f := func(seed int64, scale float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		sxy, err1 := CosineSimilarity(x, y)
		syx, err2 := CosineSimilarity(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(sxy-syx) > 1e-12 {
			return false
		}
		if sxy < -1-1e-12 || sxy > 1+1e-12 {
			return false
		}
		sxx, _ := CosineSimilarity(x, x)
		if math.Abs(sxx-1) > 1e-12 {
			return false
		}
		// Positive scaling leaves similarity unchanged.
		c := math.Abs(scale)
		if c > 1e-6 && c < 1e6 && !math.IsNaN(c) {
			scaled := make([]float64, n)
			for i, v := range x {
				scaled[i] = v * c
			}
			s2, _ := CosineSimilarity(scaled, y)
			if math.Abs(s2-sxy) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{
		Series:      []*Series{validSeries(1, 1, 1), validSeries(2, 1, 2)},
		Temperature: &Temperature{Values: make([]float64, 24)},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset: %v", err)
	}
	if d.ByID(2) == nil || d.ByID(2).ID != 2 {
		t.Error("ByID(2) failed")
	}
	if d.ByID(99) != nil {
		t.Error("ByID(99) should be nil")
	}

	if err := (&Dataset{}).Validate(); err == nil {
		t.Error("empty dataset: want error")
	}
	noTemp := &Dataset{Series: []*Series{validSeries(1, 1, 1)}}
	if err := noTemp.Validate(); err == nil {
		t.Error("missing temperature: want error")
	}
	mismatch := &Dataset{
		Series:      []*Series{validSeries(1, 2, 1)},
		Temperature: &Temperature{Values: make([]float64, 24)},
	}
	if err := mismatch.Validate(); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestConstants(t *testing.T) {
	if HoursPerYear != 8760 {
		t.Errorf("HoursPerYear = %d, want 8760 (365x24, per paper §3)", HoursPerYear)
	}
}
