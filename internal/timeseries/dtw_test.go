package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTWIdenticalSeriesIsZero(t *testing.T) {
	x := []float64{1, 2, 3, 2, 1}
	d, err := DTWDistance(x, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("DTW(x,x) = %g", d)
	}
}

func TestDTWAbsorbsTimeShift(t *testing.T) {
	// A shifted copy of a pattern: DTW should be near zero while the
	// pointwise (Euclidean) distance is large.
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 25)
		y[i] = math.Sin(2 * math.Pi * float64(i+3) / 25) // shifted by 3
	}
	dtw, err := DTWDistance(x, y, 10)
	if err != nil {
		t.Fatal(err)
	}
	var euclid float64
	for i := range x {
		d := x[i] - y[i]
		euclid += d * d
	}
	euclid = math.Sqrt(euclid)
	if dtw > euclid/3 {
		t.Errorf("DTW %g did not absorb the shift (euclidean %g)", dtw, euclid)
	}
}

func TestDTWUnequalLengths(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5}
	y := []float64{0, 2, 4}
	d1, err := DTWDistance(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric in argument order.
	d2, err := DTWDistance(y, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("asymmetric: %g vs %g", d1, d2)
	}
}

func TestDTWBandWidensForLengthGap(t *testing.T) {
	// A radius smaller than the length difference must still connect the
	// endpoints (the implementation widens the band).
	x := make([]float64, 50)
	y := make([]float64, 10)
	if _, err := DTWDistance(x, y, 1); err != nil {
		t.Errorf("narrow band on unequal lengths: %v", err)
	}
}

func TestDTWErrors(t *testing.T) {
	if _, err := DTWDistance(nil, []float64{1}, 0); err == nil {
		t.Error("empty x: want error")
	}
	if _, err := DTWDistance([]float64{1}, nil, 0); err == nil {
		t.Error("empty y: want error")
	}
	if _, err := DTWDistance([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative radius: want error")
	}
}

// Properties: non-negative, symmetric, zero on identity, and bounded
// above by the Euclidean distance for equal-length series (warping can
// only reduce cost).
func TestDTWPropertiesQuick(t *testing.T) {
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		n := rng.Intn(40) + 1
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		dxy, err1 := DTWDistance(x, y, 0)
		dyx, err2 := DTWDistance(y, x, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		if dxy < 0 || math.Abs(dxy-dyx) > 1e-9 {
			return false
		}
		dxx, _ := DTWDistance(x, x, 0)
		if dxx != 0 {
			return false
		}
		var euclid float64
		for i := range x {
			d := x[i] - y[i]
			euclid += d * d
		}
		return dxy <= math.Sqrt(euclid)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDTWBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 720)
	y := make([]float64, 720)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DTWDistance(x, y, 24); err != nil {
			b.Fatal(err)
		}
	}
}
