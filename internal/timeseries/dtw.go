package timeseries

import (
	"fmt"
	"math"

	"github.com/smartmeter/smartbench/internal/stats"
)

// DTWDistance computes the dynamic time warping distance between two
// series with a Sakoe-Chiba band of the given radius (0 means the
// unconstrained full warping window). The paper's similarity task fixes
// cosine similarity, but the time-series benchmark it builds on (Keogh
// & Kasetty, its reference [19]) evaluates DTW as the other canonical
// similarity measure, so the library offers it as an alternative
// metric.
//
// The implementation uses the standard O(n*m) dynamic program with an
// O(min(n,m)) rolling row.
func DTWDistance(x, y []float64, radius int) (float64, error) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("timeseries: DTW on empty series (%d, %d)", n, m)
	}
	if radius < 0 {
		return 0, fmt.Errorf("timeseries: negative DTW radius %d", radius)
	}
	if radius == 0 {
		radius = max(n, m) // unconstrained
	}
	// Ensure y is the shorter series so the rolling rows stay small.
	if m > n {
		x, y = y, x
		n, m = m, n
	}
	// The band must be wide enough to connect (0,0) to (n-1,m-1).
	if radius < n-m {
		radius = n - m
	}

	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		lo := i - radius
		if lo < 1 {
			lo = 1
		}
		hi := i + radius
		if hi > m {
			hi = m
		}
		for j := range cur {
			cur[j] = inf
		}
		for j := lo; j <= hi; j++ {
			d := x[i-1] - y[j-1]
			cost := d * d
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			if stats.ExactEqual(best, inf) {
				continue
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	if stats.ExactEqual(prev[m], inf) {
		return 0, fmt.Errorf("timeseries: DTW band radius %d disconnects the series", radius)
	}
	return math.Sqrt(prev[m]), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
