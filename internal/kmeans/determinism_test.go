package kmeans

import (
	"math/rand"
	"reflect"
	"testing"
)

func testPoints(n, dim int, seedVal int64) [][]float64 {
	rng := rand.New(rand.NewSource(seedVal))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64() + float64(i%4)*5
		}
		pts[i] = p
	}
	return pts
}

// TestRunDeterministicDeep asserts two Run calls with the same
// Config.Seed produce identical clusterings — centroids, assignment,
// inertia, all of it (DeepEqual, stronger than the assignment-only
// check in kmeans_test.go) — which the generator's disaggregation step
// depends on.
func TestRunDeterministicDeep(t *testing.T) {
	pts := testPoints(60, 6, 3)
	cfg := Config{K: 4, Seed: 21}
	a, err := Run(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different clusterings")
	}
}

// TestRunRandMatchesRun asserts the explicit-rng entry point is the
// same computation as the Config.Seed path: Run must be RunRand with a
// rand.New(rand.NewSource(cfg.Seed)) stream, nothing more.
func TestRunRandMatchesRun(t *testing.T) {
	pts := testPoints(40, 5, 8)
	cfg := Config{K: 3, Seed: 13}
	viaSeed, err := Run(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaRng, err := RunRand(pts, cfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaSeed, viaRng) {
		t.Fatal("RunRand with seeded stream differs from Run")
	}
}
