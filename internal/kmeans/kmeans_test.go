package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates k well-separated Gaussian clusters.
func blobs(k, perCluster, dim int, sep float64, seedVal int64) (points [][]float64, truth []int) {
	rng := rand.New(rand.NewSource(seedVal))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = float64(c) * sep
		}
	}
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = centers[c][j] + rng.NormFloat64()*0.3
			}
			points = append(points, p)
			truth = append(truth, c)
		}
	}
	return points, truth
}

func TestRunSeparatedBlobs(t *testing.T) {
	points, truth := blobs(3, 40, 4, 10, 1)
	res, err := Run(points, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 || len(res.Assign) != len(points) {
		t.Fatalf("shape: %d centroids, %d assignments", len(res.Centroids), len(res.Assign))
	}
	// Every true cluster must map to exactly one k-means cluster.
	mapping := map[int]int{}
	for i, c := range res.Assign {
		if prev, ok := mapping[truth[i]]; ok && prev != c {
			t.Fatalf("true cluster %d split across k-means clusters %d and %d", truth[i], prev, c)
		}
		mapping[truth[i]] = c
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(points) {
		t.Errorf("sizes sum to %d, want %d", total, len(points))
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %g", res.Inertia)
	}
}

func TestRunK1(t *testing.T) {
	points, _ := blobs(2, 10, 3, 5, 2)
	res, err := Run(points, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The single centroid is the global mean.
	for j := 0; j < 3; j++ {
		var mean float64
		for _, p := range points {
			mean += p[j]
		}
		mean /= float64(len(points))
		if math.Abs(res.Centroids[0][j]-mean) > 1e-9 {
			t.Errorf("centroid[%d] = %g, want %g", j, res.Centroids[0][j], mean)
		}
	}
}

func TestRunKEqualsN(t *testing.T) {
	points := [][]float64{{0}, {10}, {20}}
	res, err := Run(points, Config{K: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-18 {
		t.Errorf("K=N inertia = %g, want 0", res.Inertia)
	}
	seen := map[int]bool{}
	for _, c := range res.Assign {
		if seen[c] {
			t.Fatal("two points share a cluster with K=N")
		}
		seen[c] = true
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := Run(points, Config{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("identical points inertia = %g", res.Inertia)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, Config{K: 1}); err != ErrNoPoints {
		t.Errorf("no points err = %v", err)
	}
	pts := [][]float64{{1}, {2}}
	if _, err := Run(pts, Config{K: 0}); !errors.Is(err, ErrBadK) {
		t.Errorf("K=0 err = %v", err)
	}
	if _, err := Run(pts, Config{K: 3}); !errors.Is(err, ErrBadK) {
		t.Errorf("K>n err = %v", err)
	}
	if _, err := Run([][]float64{{}}, Config{K: 1}); err == nil {
		t.Error("zero-dim: want error")
	}
	if _, err := Run([][]float64{{1}, {1, 2}}, Config{K: 1}); err == nil {
		t.Error("ragged: want error")
	}
}

func TestRunDeterministic(t *testing.T) {
	points, _ := blobs(4, 25, 6, 8, 5)
	a, err := Run(points, Config{K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(points, Config{K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed produced different inertia")
	}
}

// Properties: every point is assigned to its nearest centroid, and
// inertia equals the recomputed within-cluster SSE.
func TestRunInvariantsQuick(t *testing.T) {
	f := func(seedVal int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seedVal))
		n := rng.Intn(60) + 5
		dim := rng.Intn(5) + 1
		k := int(kRaw)%n + 1
		points := make([][]float64, n)
		for i := range points {
			points[i] = make([]float64, dim)
			for j := range points[i] {
				points[i][j] = rng.Float64() * 20
			}
		}
		res, err := Run(points, Config{K: k, Seed: seedVal})
		if err != nil {
			return false
		}
		var sse float64
		for i, p := range points {
			// Nearest centroid check.
			best, bestD := 0, math.Inf(1)
			for c, cent := range res.Centroids {
				if d := sqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			myD := sqDist(p, res.Centroids[res.Assign[i]])
			if myD > bestD+1e-9 {
				_ = best
				return false
			}
			sse += myD
		}
		return math.Abs(sse-res.Inertia) < 1e-6*(1+sse)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMoreClustersNeverIncreaseInertia(t *testing.T) {
	points, _ := blobs(5, 20, 3, 4, 6)
	prev := math.Inf(1)
	for k := 1; k <= 8; k++ {
		res, err := Run(points, Config{K: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Allow slight non-monotonicity since k-means is a local optimum.
		if res.Inertia > prev*1.10 {
			t.Errorf("K=%d inertia %g far above K=%d inertia %g", k, res.Inertia, k-1, prev)
		}
		if res.Inertia < prev {
			prev = res.Inertia
		}
	}
}
