// Package kmeans implements Lloyd's k-means algorithm with k-means++
// seeding. The benchmark's data generator (paper §4) uses it to cluster
// consumers' daily activity profiles; the segmentation example uses it
// for customer segmentation.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Result holds a clustering of n points into k clusters.
type Result struct {
	// Centroids holds k centroid vectors.
	Centroids [][]float64
	// Assign maps each input point index to its cluster index.
	Assign []int
	// Sizes holds the number of points per cluster.
	Sizes []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is how many Lloyd iterations ran before convergence.
	Iterations int
}

// Config controls the clustering.
type Config struct {
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIter bounds the Lloyd iterations. Default 100.
	MaxIter int
	// Tol stops iteration when total centroid movement (squared) falls
	// below it. Default 1e-9.
	Tol float64
	// Seed seeds the deterministic PRNG used by k-means++.
	Seed int64
}

var (
	// ErrNoPoints is returned for an empty input.
	ErrNoPoints = errors.New("kmeans: no points")
	// ErrBadK is returned when K < 1 or K > number of points.
	ErrBadK = errors.New("kmeans: invalid K")
)

// Run clusters the points. All points must share one dimensionality.
// The PRNG is derived from cfg.Seed, so equal inputs give equal output.
func Run(points [][]float64, cfg Config) (*Result, error) {
	return RunRand(points, cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// RunRand is Run with an explicitly injected PRNG: callers that manage
// their own deterministic rand stream (the data generator, tests)
// thread it through here rather than relying on cfg.Seed.
func RunRand(points [][]float64, cfg Config, rng *rand.Rand) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("%w: K=%d with %d points", ErrBadK, cfg.K, n)
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("kmeans: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-9
	}

	centroids := seedPlusPlus(points, cfg.K, rng)
	assign := make([]int, n)
	sizes := make([]int, cfg.K)
	res := &Result{}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		var inertia float64
		for i := range sizes {
			sizes[i] = 0
		}
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			sizes[best]++
			inertia += bestD
		}
		res.Inertia = inertia

		// Update step.
		next := make([][]float64, cfg.K)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := next[assign[i]]
			for j, v := range p {
				c[j] += v
			}
		}
		var moved float64
		for c := range next {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to keep K live clusters.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(next[c], points[far])
			} else {
				inv := 1 / float64(sizes[c])
				for j := range next[c] {
					next[c][j] *= inv
				}
			}
			moved += sqDist(next[c], centroids[c])
		}
		centroids = next
		if moved < cfg.Tol {
			break
		}
	}

	// Final assignment against the converged centroids.
	var inertia float64
	for i := range sizes {
		sizes[i] = 0
	}
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, cent := range centroids {
			if d := sqDist(p, cent); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		sizes[best]++
		inertia += bestD
	}
	res.Centroids = centroids
	res.Assign = assign
	res.Sizes = sizes
	res.Inertia = inertia
	return res, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy:
// the first uniformly, each next with probability proportional to the
// squared distance from the nearest chosen centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centroids = append(centroids, clone(first))

	d2 := make([]float64, n)
	for i, p := range points {
		d2[i] = sqDist(p, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			// All remaining points coincide with chosen centroids.
			idx = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i, d := range d2 {
				r -= d
				if r <= 0 {
					idx = i
					break
				}
			}
		}
		c := clone(points[idx])
		centroids = append(centroids, c)
		for i, p := range points {
			if d := sqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

func clone(p []float64) []float64 { return append([]float64(nil), p...) }

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
