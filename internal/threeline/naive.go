package threeline

import (
	"math"

	"github.com/smartmeter/smartbench/internal/stats"
)

// fitSegmentedNaive is the textbook implementation of the breakpoint
// search: for every candidate pair it refits all three segments with
// stats.LinearFit and recomputes the SSE point by point, costing
// O(n^3) against fitSegmented's prefix-sum O(n^2). It exists as the
// correctness oracle for the optimized search (see the equivalence
// property test) and as the baseline of the ablation benchmark.
func fitSegmentedNaive(xs, ys []float64, minSeg int, minSpanFrac float64) Model {
	n := len(xs)
	if n < 3*minSeg {
		line, sse := naiveFitRange(xs, ys, 0, n)
		return Model{
			Break1: math.Inf(-1), Break2: math.Inf(1),
			Heating: line, Base: line, Cooling: line,
			Degenerate: true, SSE: sse,
		}
	}
	minSpan := minSpanFrac * (xs[n-1] - xs[0])
	bestSSE, bestI, bestJ, bestLines := naiveSearch(xs, ys, n, minSeg, minSpan)
	if math.IsInf(bestSSE, 1) && minSpan > 0 {
		bestSSE, bestI, bestJ, bestLines = naiveSearch(xs, ys, n, minSeg, 0)
	}
	b1 := (xs[bestI-1] + xs[bestI]) / 2
	b2 := (xs[bestJ-1] + xs[bestJ]) / 2
	return Model{
		Break1: b1, Break2: b2,
		Heating: bestLines[0], Base: bestLines[1], Cooling: bestLines[2],
		SSE: bestSSE,
	}
}

func naiveSearch(xs, ys []float64, n, minSeg int, minSpan float64) (float64, int, int, [3]stats.Line) {
	bestSSE := math.Inf(1)
	bestI, bestJ := minSeg, 2*minSeg
	var bestLines [3]stats.Line
	for i := minSeg; i+2*minSeg <= n; i++ {
		if xs[i-1]-xs[0] < minSpan {
			continue
		}
		for j := i + minSeg; j+minSeg <= n; j++ {
			if xs[n-1]-xs[j] < minSpan {
				break
			}
			l1, s1 := naiveFitRange(xs, ys, 0, i)
			l2, s2 := naiveFitRange(xs, ys, i, j)
			l3, s3 := naiveFitRange(xs, ys, j, n)
			if t := s1 + s2 + s3; t < bestSSE {
				bestSSE = t
				bestI, bestJ = i, j
				bestLines = [3]stats.Line{l1, l2, l3}
			}
		}
	}
	return bestSSE, bestI, bestJ, bestLines
}

// naiveFitRange fits [lo, hi) with the library OLS and measures SSE
// directly.
func naiveFitRange(xs, ys []float64, lo, hi int) (stats.Line, float64) {
	line, err := stats.LinearFit(xs[lo:hi], ys[lo:hi])
	if err != nil {
		// Constant x (or a single point): horizontal line through the
		// mean, the same convention as segFitter.fit.
		mean, _ := stats.Mean(ys[lo:hi])
		line = stats.Line{Slope: 0, Intercept: mean}
	}
	var sse float64
	for k := lo; k < hi; k++ {
		r := ys[k] - line.At(xs[k])
		sse += r * r
	}
	return line, sse
}
