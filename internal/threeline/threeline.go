// Package threeline implements benchmark task 2 (paper §3.2): the 3-line
// piecewise linear regression model of Birt et al. that captures a
// household's thermal sensitivity.
//
// For one consumer the algorithm:
//
//  1. groups hourly (temperature, consumption) points by temperature value
//     (1 degree C bins) and computes the 10th and 90th percentile of
//     consumption within each bin (phase T1 in the paper's Figure 6);
//  2. fits three least-squares line segments — heating / base / cooling —
//     to each percentile series, choosing the two breakpoints that
//     minimize total squared error (phase T2);
//  3. adjusts the segments so the piecewise model is continuous at the
//     breakpoints (phase T3).
//
// The slopes of the left and right 90th-percentile segments are the
// heating and cooling gradients; the lowest point of the 10th-percentile
// model is the household's base load.
package threeline

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Config controls the fit.
type Config struct {
	// BinWidth is the temperature bin width in degrees C. Default 1.
	BinWidth float64
	// LowQ and HighQ are the two percentile levels. Defaults 0.10, 0.90.
	LowQ, HighQ float64
	// MinBinPoints is the minimum number of readings a temperature bin
	// needs before it contributes a percentile point. Default 4.
	MinBinPoints int
	// MinSegmentPoints is the minimum number of percentile points per
	// segment. Default 3.
	MinSegmentPoints int
	// MinOuterSpanFrac is the minimum fraction of the observed
	// temperature range that each outer (heating / cooling) segment must
	// cover, which stops the breakpoint search from parking a breakpoint
	// at the extreme edge of the range and labelling a noisy sliver as
	// the heating or cooling regime. Default 0.2.
	MinOuterSpanFrac float64
}

// DefaultConfig returns the benchmark's fixed parameters.
func DefaultConfig() Config {
	return Config{
		BinWidth: 1, LowQ: 0.10, HighQ: 0.90,
		MinBinPoints: 4, MinSegmentPoints: 3, MinOuterSpanFrac: 0.2,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.BinWidth <= 0 {
		c.BinWidth = d.BinWidth
	}
	if c.LowQ <= 0 || c.LowQ >= 1 {
		c.LowQ = d.LowQ
	}
	if c.HighQ <= 0 || c.HighQ >= 1 {
		c.HighQ = d.HighQ
	}
	if c.MinBinPoints <= 0 {
		c.MinBinPoints = d.MinBinPoints
	}
	if c.MinSegmentPoints < 2 {
		c.MinSegmentPoints = d.MinSegmentPoints
	}
	if c.MinOuterSpanFrac <= 0 || c.MinOuterSpanFrac >= 0.5 {
		c.MinOuterSpanFrac = d.MinOuterSpanFrac
	}
}

// Model is a continuous piecewise-linear model with up to three segments.
// For temperatures below Break1 the Heating line applies; between Break1
// and Break2 the Base line; above Break2 the Cooling line. A degenerate
// fit (too few distinct temperatures) uses one line for all segments.
type Model struct {
	Break1, Break2         float64
	Heating, Base, Cooling stats.Line
	Degenerate             bool
	// SSE is the sum of squared errors of the (pre-adjustment) fit over
	// the percentile points.
	SSE float64
}

// At evaluates the model at temperature t.
func (m *Model) At(t float64) float64 {
	switch {
	case t < m.Break1:
		return m.Heating.At(t)
	case t <= m.Break2:
		return m.Base.At(t)
	default:
		return m.Cooling.At(t)
	}
}

// MinValue returns the lowest value the model attains over [lo, hi]
// (the candidate extrema are the interval ends and the breakpoints).
func (m *Model) MinValue(lo, hi float64) float64 {
	min := math.Inf(1)
	for _, t := range []float64{lo, hi, m.Break1, m.Break2} {
		if t < lo || t > hi {
			continue
		}
		if v := m.At(t); v < min {
			min = v
		}
	}
	return min
}

// Result is the 3-line output for one consumer.
type Result struct {
	ID timeseries.ID
	// High is the model fitted to the 90th percentile points, Low to the
	// 10th percentile points.
	High, Low Model
	// HeatingGradient is the negated slope of the heating segment of the
	// High model (kWh per degree of cooling outside), so larger means more
	// heating sensitivity. CoolingGradient is the slope of the cooling
	// segment. BaseLoad is the lowest point of the Low model (paper §3.2).
	HeatingGradient float64
	CoolingGradient float64
	BaseLoad        float64
	// TempMin and TempMax delimit the observed temperature range.
	TempMin, TempMax float64
}

// Timing records how long each phase took (paper Figure 6: T1 quantiles,
// T2 regression, T3 continuity adjustment).
type Timing struct {
	T1Quantiles  time.Duration
	T2Regression time.Duration
	T3Adjust     time.Duration
}

// Total returns the summed phase durations.
func (t Timing) Total() time.Duration { return t.T1Quantiles + t.T2Regression + t.T3Adjust }

// ErrInsufficientData is returned when a consumer has too few populated
// temperature bins to fit any line.
var ErrInsufficientData = errors.New("threeline: insufficient data")

// Compute fits the 3-line model for one consumer with default parameters.
func Compute(s *timeseries.Series, temp *timeseries.Temperature) (*Result, error) {
	r, _, err := ComputeTimed(s, temp, DefaultConfig())
	return r, err
}

// ComputeTimed fits the 3-line model and reports per-phase timings.
func ComputeTimed(s *timeseries.Series, temp *timeseries.Temperature, cfg Config) (*Result, Timing, error) {
	cfg.fillDefaults()
	var tm Timing
	if len(s.Readings) != len(temp.Values) {
		return nil, tm, fmt.Errorf("threeline: consumer %d has %d readings but %d temperatures",
			s.ID, len(s.Readings), len(temp.Values))
	}
	if len(s.Readings) == 0 {
		return nil, tm, fmt.Errorf("%w: consumer %d is empty", ErrInsufficientData, s.ID)
	}

	// Phase T1: per-temperature-bin percentiles.
	start := time.Now()
	xs, lows, highs := percentilePoints(s.Readings, temp.Values, cfg)
	tm.T1Quantiles = time.Since(start)

	// Phases T2 + T3 on the extracted point set.
	res, t2, t3, err := fitPointsPhased(s.ID, xs, lows, highs, cfg)
	tm.T2Regression, tm.T3Adjust = t2, t3
	if err != nil {
		return nil, tm, err
	}
	return res, tm, nil
}

// FitPoints runs phases T2 (segmented least squares) and T3 (continuity
// adjustment) on an already-extracted percentile point set: xs are bin
// centers in ascending order, lows/highs the matching percentile
// values. It is the re-fit entry point for incremental maintenance
// (internal/incr), which tracks the bins itself and only calls here
// when the point set actually changed.
func FitPoints(id timeseries.ID, xs, lows, highs []float64, cfg Config) (*Result, error) {
	res, _, _, err := fitPointsPhased(id, xs, lows, highs, cfg)
	return res, err
}

func fitPointsPhased(id timeseries.ID, xs, lows, highs []float64, cfg Config) (*Result, time.Duration, time.Duration, error) {
	cfg.fillDefaults()
	if len(xs) < 2 {
		return nil, 0, 0, fmt.Errorf("%w: consumer %d has %d populated temperature bins",
			ErrInsufficientData, id, len(xs))
	}
	start := time.Now()
	high := fitSegmented(xs, highs, cfg.MinSegmentPoints, cfg.MinOuterSpanFrac)
	low := fitSegmented(xs, lows, cfg.MinSegmentPoints, cfg.MinOuterSpanFrac)
	t2 := time.Since(start)
	start = time.Now()
	high.makeContinuous()
	low.makeContinuous()
	t3 := time.Since(start)
	tmin, tmax := xs[0], xs[len(xs)-1]
	return &Result{
		ID:              id,
		High:            high,
		Low:             low,
		HeatingGradient: -high.Heating.Slope,
		CoolingGradient: high.Cooling.Slope,
		BaseLoad:        low.MinValue(tmin, tmax),
		TempMin:         tmin,
		TempMax:         tmax,
	}, t2, t3, nil
}

// ComputeAll runs the task for every series in the dataset.
func ComputeAll(d *timeseries.Dataset) ([]*Result, error) {
	out := make([]*Result, 0, len(d.Series))
	for _, s := range d.Series {
		r, err := Compute(s, d.Temperature)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// BinIndex returns the temperature bin a reading at temperature t falls
// into for the given bin width.
func BinIndex(t, binWidth float64) int {
	return int(math.Floor(t / binWidth))
}

// percentilePoints bins readings by temperature and returns, for each
// sufficiently populated bin in ascending temperature order, the bin
// center and the low/high consumption percentiles.
func percentilePoints(readings, temps []float64, cfg Config) (xs, lows, highs []float64) {
	bins := make(map[int][]float64)
	for i, r := range readings {
		b := BinIndex(temps[i], cfg.BinWidth)
		bins[b] = append(bins[b], r)
	}
	for _, v := range bins {
		sort.Float64s(v)
	}
	return PointsFromSortedBins(bins, cfg)
}

// PointsFromSortedBins extracts the phase-T1 percentile point set from
// temperature bins whose consumption values are already sorted
// ascending, keyed by BinIndex. Incremental maintenance keeps such bins
// current across appends (sorted insertion yields the same slice
// contents as sorting from scratch) and re-extracts points from here;
// the output is identical to the batch path's for the same readings.
func PointsFromSortedBins(bins map[int][]float64, cfg Config) (xs, lows, highs []float64) {
	cfg.fillDefaults()
	keys := make([]int, 0, len(bins))
	for k, v := range bins {
		if len(v) >= cfg.MinBinPoints {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	xs = make([]float64, 0, len(keys))
	lows = make([]float64, 0, len(keys))
	highs = make([]float64, 0, len(keys))
	for _, k := range keys {
		v := bins[k]
		lo, _ := stats.QuantileSorted(v, cfg.LowQ)
		hi, _ := stats.QuantileSorted(v, cfg.HighQ)
		xs = append(xs, (float64(k)+0.5)*cfg.BinWidth)
		lows = append(lows, lo)
		highs = append(highs, hi)
	}
	return xs, lows, highs
}

// segFitter computes least-squares fits and SSE over index ranges of a
// fixed (x, y) point set in O(1) per range using prefix sums.
type segFitter struct {
	x, y                  []float64
	sx, sy, sxx, sxy, syy []float64 // prefix sums, len n+1
}

func newSegFitter(x, y []float64) *segFitter {
	n := len(x)
	f := &segFitter{
		x: x, y: y,
		sx:  make([]float64, n+1),
		sy:  make([]float64, n+1),
		sxx: make([]float64, n+1),
		sxy: make([]float64, n+1),
		syy: make([]float64, n+1),
	}
	for i := 0; i < n; i++ {
		f.sx[i+1] = f.sx[i] + x[i]
		f.sy[i+1] = f.sy[i] + y[i]
		f.sxx[i+1] = f.sxx[i] + x[i]*x[i]
		f.sxy[i+1] = f.sxy[i] + x[i]*y[i]
		f.syy[i+1] = f.syy[i] + y[i]*y[i]
	}
	return f
}

// fit returns the OLS line over points [lo, hi) and its SSE. If the x
// values in the range are (nearly) constant it returns a horizontal line
// through the mean.
func (f *segFitter) fit(lo, hi int) (stats.Line, float64) {
	n := float64(hi - lo)
	sx := f.sx[hi] - f.sx[lo]
	sy := f.sy[hi] - f.sy[lo]
	sxx := f.sxx[hi] - f.sxx[lo]
	sxy := f.sxy[hi] - f.sxy[lo]
	syy := f.syy[hi] - f.syy[lo]
	den := n*sxx - sx*sx
	if den <= 1e-9*math.Abs(n*sxx) || den <= 0 {
		mean := sy / n
		sse := syy - 2*mean*sy + n*mean*mean
		if sse < 0 {
			sse = 0
		}
		return stats.Line{Slope: 0, Intercept: mean}, sse
	}
	slope := (n*sxy - sx*sy) / den
	icept := (sy - slope*sx) / n
	// SSE = sum (y - a - b x)^2 expanded over the prefix sums.
	sse := syy + n*icept*icept + slope*slope*sxx -
		2*icept*sy - 2*slope*sxy + 2*slope*icept*sx
	if sse < 0 {
		sse = 0
	}
	return stats.Line{Slope: slope, Intercept: icept}, sse
}

// fitSegmented finds the two breakpoints minimizing the total SSE of
// three per-segment OLS fits, requiring minSeg points per segment. When
// the point set is too small for three segments it falls back to a single
// line (degenerate model).
func fitSegmented(xs, ys []float64, minSeg int, minSpanFrac float64) Model {
	n := len(xs)
	f := newSegFitter(xs, ys)
	if n < 3*minSeg {
		line, sse := f.fit(0, n)
		return Model{
			Break1: math.Inf(-1), Break2: math.Inf(1),
			Heating: line, Base: line, Cooling: line,
			Degenerate: true, SSE: sse,
		}
	}
	minSpan := minSpanFrac * (xs[n-1] - xs[0])
	bestSSE, bestI, bestJ, bestLines := searchBreaks(f, xs, n, minSeg, minSpan)
	if math.IsInf(bestSSE, 1) && minSpan > 0 {
		// The span constraint left no candidates (e.g. points clustered at
		// the range edges); retry unconstrained.
		bestSSE, bestI, bestJ, bestLines = searchBreaks(f, xs, n, minSeg, 0)
	}
	// Breakpoints sit halfway between the neighbouring bin centers.
	b1 := (xs[bestI-1] + xs[bestI]) / 2
	b2 := (xs[bestJ-1] + xs[bestJ]) / 2
	return Model{
		Break1: b1, Break2: b2,
		Heating: bestLines[0], Base: bestLines[1], Cooling: bestLines[2],
		SSE: bestSSE,
	}
}

// searchBreaks scans all breakpoint pairs (i, j) splitting the points
// into [0,i), [i,j), [j,n), subject to the per-segment point minimum and
// the outer-segment span minimum, and returns the SSE-optimal choice.
func searchBreaks(f *segFitter, xs []float64, n, minSeg int, minSpan float64) (float64, int, int, [3]stats.Line) {
	bestSSE := math.Inf(1)
	bestI, bestJ := minSeg, 2*minSeg
	var bestLines [3]stats.Line
	for i := minSeg; i+2*minSeg <= n; i++ {
		if xs[i-1]-xs[0] < minSpan {
			continue
		}
		l1, s1 := f.fit(0, i)
		for j := i + minSeg; j+minSeg <= n; j++ {
			if xs[n-1]-xs[j] < minSpan {
				break // j only grows, span only shrinks
			}
			l2, s2 := f.fit(i, j)
			l3, s3 := f.fit(j, n)
			if t := s1 + s2 + s3; t < bestSSE {
				bestSSE = t
				bestI, bestJ = i, j
				bestLines = [3]stats.Line{l1, l2, l3}
			}
		}
	}
	return bestSSE, bestI, bestJ, bestLines
}

// makeContinuous adjusts the three segments so the model is continuous:
// the junction value at each breakpoint is the mean of the two adjoining
// segment predictions; the base segment is replaced by the chord through
// the junctions and the outer segments keep their slopes but are shifted
// to pass through the junctions (paper §3.2, "the algorithm ensures that
// the three lines are not discontinuous").
func (m *Model) makeContinuous() {
	if m.Degenerate {
		return
	}
	v1 := (m.Heating.At(m.Break1) + m.Base.At(m.Break1)) / 2
	v2 := (m.Base.At(m.Break2) + m.Cooling.At(m.Break2)) / 2
	if !stats.ExactEqual(m.Break2, m.Break1) {
		slope := (v2 - v1) / (m.Break2 - m.Break1)
		m.Base = stats.Line{Slope: slope, Intercept: v1 - slope*m.Break1}
	}
	m.Heating.Intercept = v1 - m.Heating.Slope*m.Break1
	m.Cooling.Intercept = v2 - m.Cooling.Slope*m.Break2
}
