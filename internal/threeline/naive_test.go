package threeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the prefix-sum breakpoint search finds the same optimum as
// the naive O(n^3) reference on random percentile curves.
func TestFitSegmentedMatchesNaiveQuick(t *testing.T) {
	f := func(seedVal int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seedVal))
		n := int(nRaw)%40 + 9 // at least 3 segments of 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + 0.5
			ys[i] = rng.NormFloat64()*2 + float64(i%7)
		}
		fast := fitSegmented(xs, ys, 3, 0.2)
		naive := fitSegmentedNaive(xs, ys, 3, 0.2)
		if fast.Degenerate != naive.Degenerate {
			return false
		}
		// The optima must agree in SSE; breakpoints may differ only when
		// two splits tie exactly (which random noise precludes).
		if math.Abs(fast.SSE-naive.SSE) > 1e-6*(1+naive.SSE) {
			t.Logf("SSE %g vs %g (n=%d seed=%d)", fast.SSE, naive.SSE, n, seedVal)
			return false
		}
		if fast.Break1 != naive.Break1 || fast.Break2 != naive.Break2 {
			t.Logf("breaks (%g,%g) vs (%g,%g)", fast.Break1, fast.Break2, naive.Break1, naive.Break2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFitSegmentedMatchesNaiveDegenerate(t *testing.T) {
	xs := []float64{0.5, 1.5, 2.5}
	ys := []float64{1, 2, 3}
	fast := fitSegmented(xs, ys, 3, 0.2)
	naive := fitSegmentedNaive(xs, ys, 3, 0.2)
	if !fast.Degenerate || !naive.Degenerate {
		t.Fatal("expected degenerate models")
	}
	if math.Abs(fast.Heating.Slope-naive.Heating.Slope) > 1e-9 {
		t.Errorf("degenerate slopes %g vs %g", fast.Heating.Slope, naive.Heating.Slope)
	}
}

// Ablation benchmark: prefix-sum search vs naive refitting (DESIGN.md's
// called-out design choice for the 3-line inner loop).
func BenchmarkFitSegmentedPrefixSum(b *testing.B) {
	xs, ys := ablationCurve(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fitSegmented(xs, ys, 3, 0.2)
	}
}

func BenchmarkFitSegmentedNaive(b *testing.B) {
	xs, ys := ablationCurve(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fitSegmentedNaive(xs, ys, 3, 0.2)
	}
}

func ablationCurve(n int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) - float64(n)/2
		ys[i] = math.Max(0, 15-xs[i])*0.2 + math.Max(0, xs[i]-22)*0.15 + 1 + rng.NormFloat64()*0.1
	}
	return xs, ys
}
