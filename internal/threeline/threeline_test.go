package threeline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// syntheticThermal builds a consumer whose consumption follows an exact
// V-with-flat-bottom thermal profile plus a constant base:
// heating below heatRef, flat between, cooling above coolRef.
func syntheticThermal(base, hg, cg, heatRef, coolRef float64, days int, noise float64, seedVal int64) (*timeseries.Series, *timeseries.Temperature) {
	rng := rand.New(rand.NewSource(seedVal))
	n := days * timeseries.HoursPerDay
	temps := make([]float64, n)
	readings := make([]float64, n)
	for i := range temps {
		// Sweep temperatures across [-15, 35] repeatedly so every degree
		// bin is well populated.
		t := -15 + float64(i%51) + rng.Float64()
		temps[i] = t
		v := base + hg*math.Max(0, heatRef-t) + cg*math.Max(0, t-coolRef) + rng.NormFloat64()*noise
		if v < 0 {
			v = 0
		}
		readings[i] = v
	}
	return &timeseries.Series{ID: 1, Readings: readings},
		&timeseries.Temperature{Values: temps}
}

func TestComputeRecoversGradients(t *testing.T) {
	const (
		base, hg, cg     = 0.8, 0.15, 0.20
		heatRef, coolRef = 14.0, 24.0
	)
	s, temp := syntheticThermal(base, hg, cg, heatRef, coolRef, 365, 0.02, 1)
	r, err := Compute(s, temp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.HeatingGradient-hg) > 0.03 {
		t.Errorf("HeatingGradient = %g, want ~%g", r.HeatingGradient, hg)
	}
	if math.Abs(r.CoolingGradient-cg) > 0.03 {
		t.Errorf("CoolingGradient = %g, want ~%g", r.CoolingGradient, cg)
	}
	// Breakpoints should be near the true comfort band edges.
	if math.Abs(r.High.Break1-heatRef) > 4 {
		t.Errorf("Break1 = %g, want ~%g", r.High.Break1, heatRef)
	}
	if math.Abs(r.High.Break2-coolRef) > 4 {
		t.Errorf("Break2 = %g, want ~%g", r.High.Break2, coolRef)
	}
	// Base load is the low-percentile floor.
	if math.Abs(r.BaseLoad-base) > 0.15 {
		t.Errorf("BaseLoad = %g, want ~%g", r.BaseLoad, base)
	}
	if r.TempMin >= r.TempMax {
		t.Errorf("temp range [%g, %g]", r.TempMin, r.TempMax)
	}
}

func TestModelContinuity(t *testing.T) {
	s, temp := syntheticThermal(1, 0.1, 0.12, 15, 23, 365, 0.05, 2)
	r, err := Compute(s, temp)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Model{r.High, r.Low} {
		if m.Degenerate {
			t.Fatal("unexpected degenerate model")
		}
		// Continuity at both breakpoints: approach from both sides.
		eps := 1e-9
		for _, b := range []float64{m.Break1, m.Break2} {
			left := m.At(b - eps)
			right := m.At(b + eps)
			if math.Abs(left-right) > 1e-6 {
				t.Errorf("discontinuity at %g: %g vs %g", b, left, right)
			}
		}
		if m.Break1 >= m.Break2 {
			t.Errorf("breakpoints out of order: %g >= %g", m.Break1, m.Break2)
		}
	}
}

func TestHighModelDominatesLow(t *testing.T) {
	s, temp := syntheticThermal(1, 0.1, 0.1, 15, 23, 365, 0.15, 3)
	r, err := Compute(s, temp)
	if err != nil {
		t.Fatal(err)
	}
	// The 90th-percentile model should sit above the 10th-percentile model
	// across the observed range.
	for tv := r.TempMin; tv <= r.TempMax; tv++ {
		if r.High.At(tv) < r.Low.At(tv)-0.05 {
			t.Errorf("High(%g) = %g below Low(%g) = %g", tv, r.High.At(tv), tv, r.Low.At(tv))
		}
	}
}

func TestComputeTimedPhases(t *testing.T) {
	s, temp := syntheticThermal(1, 0.1, 0.1, 15, 23, 120, 0.05, 4)
	_, tm, err := ComputeTimed(s, temp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tm.T1Quantiles <= 0 || tm.T2Regression <= 0 {
		t.Errorf("phases not timed: %+v", tm)
	}
	if tm.Total() < tm.T1Quantiles {
		t.Errorf("Total %v < T1 %v", tm.Total(), tm.T1Quantiles)
	}
}

func TestDegenerateFewBins(t *testing.T) {
	// All readings in only 3 temperature bins: too few for 3 segments,
	// falls back to a single line.
	n := 240
	temps := make([]float64, n)
	readings := make([]float64, n)
	for i := range temps {
		temps[i] = float64(i%3) + 0.5 // bins 0, 1, 2
		readings[i] = 1 + 0.5*temps[i]
	}
	s := &timeseries.Series{ID: 1, Readings: readings}
	r, err := Compute(s, &timeseries.Temperature{Values: temps})
	if err != nil {
		t.Fatal(err)
	}
	if !r.High.Degenerate {
		t.Error("expected degenerate model with 3 bins")
	}
	if math.Abs(r.High.Heating.Slope-0.5) > 1e-6 {
		t.Errorf("degenerate slope = %g, want 0.5", r.High.Heating.Slope)
	}
}

func TestInsufficientData(t *testing.T) {
	// A single temperature bin cannot support any fit.
	temps := make([]float64, 24)
	readings := make([]float64, 24)
	for i := range temps {
		temps[i] = 20.2
		readings[i] = 1
	}
	s := &timeseries.Series{ID: 1, Readings: readings}
	_, err := Compute(s, &timeseries.Temperature{Values: temps})
	if !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}

	empty := &timeseries.Series{ID: 2}
	_, err = Compute(empty, &timeseries.Temperature{})
	if !errors.Is(err, ErrInsufficientData) {
		t.Errorf("empty err = %v, want ErrInsufficientData", err)
	}
}

func TestLengthMismatch(t *testing.T) {
	s := &timeseries.Series{ID: 1, Readings: make([]float64, 48)}
	_, err := Compute(s, &timeseries.Temperature{Values: make([]float64, 24)})
	if err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestComputeAll(t *testing.T) {
	s1, temp := syntheticThermal(1, 0.1, 0.1, 15, 23, 90, 0.05, 5)
	s2, _ := syntheticThermal(0.5, 0.2, 0.05, 16, 22, 90, 0.05, 6)
	s2.ID = 2
	d := &timeseries.Dataset{Series: []*timeseries.Series{s1, s2}, Temperature: temp}
	rs, err := ComputeAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].ID != 1 || rs[1].ID != 2 {
		t.Errorf("results = %v", rs)
	}
}

func TestConfigDefaultsFill(t *testing.T) {
	var c Config
	c.fillDefaults()
	d := DefaultConfig()
	if c != d {
		t.Errorf("filled config = %+v, want %+v", c, d)
	}
	// Out-of-range quantiles reset to defaults.
	c = Config{LowQ: -1, HighQ: 2}
	c.fillDefaults()
	if c.LowQ != d.LowQ || c.HighQ != d.HighQ {
		t.Errorf("quantiles = %g, %g", c.LowQ, c.HighQ)
	}
}

func TestSegFitterMatchesDirectSSE(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 40
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] + 2 + rng.NormFloat64()
	}
	f := newSegFitter(xs, ys)
	for _, rg := range [][2]int{{0, n}, {5, 20}, {10, 13}} {
		line, sse := f.fit(rg[0], rg[1])
		// Direct SSE.
		var direct float64
		for i := rg[0]; i < rg[1]; i++ {
			r := ys[i] - line.At(xs[i])
			direct += r * r
		}
		if math.Abs(sse-direct) > 1e-6*(1+direct) {
			t.Errorf("range %v: prefix-sum SSE %g vs direct %g", rg, sse, direct)
		}
	}
}

func TestSegFitterConstantX(t *testing.T) {
	xs := []float64{2, 2, 2, 2}
	ys := []float64{1, 3, 5, 7}
	f := newSegFitter(xs, ys)
	line, sse := f.fit(0, 4)
	if line.Slope != 0 || line.Intercept != 4 {
		t.Errorf("constant-x fit = %+v", line)
	}
	if math.Abs(sse-20) > 1e-9 { // sum (y-4)^2 = 9+1+1+9
		t.Errorf("constant-x SSE = %g, want 20", sse)
	}
}

func TestMinValue(t *testing.T) {
	m := Model{Break1: 10, Break2: 20}
	m.Heating.Slope, m.Heating.Intercept = -1, 15 // decreasing to 5 at t=10
	m.Base.Slope, m.Base.Intercept = 0, 5
	m.Cooling.Slope, m.Cooling.Intercept = 1, -15 // 5 at t=20, rising
	if got := m.MinValue(0, 30); got != 5 {
		t.Errorf("MinValue = %g, want 5", got)
	}
	// Restricting the range excludes the flat bottom.
	if got := m.MinValue(0, 5); got != 10 {
		t.Errorf("MinValue(0,5) = %g, want 10", got)
	}
}
