// Segmentation: the producer-oriented application class from the
// paper's §2.1 — extract every consumer's daily activity profile with
// PAR, cluster the profiles with k-means, and print a segment report a
// utility could use to design targeted programs.
//
//	go run ./examples/segmentation
package main

import (
	"fmt"
	"log"

	"github.com/smartmeter/smartbench/internal/kmeans"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const k = 4
	ds, err := seed.Generate(seed.Config{Consumers: 60, Days: 365, Seed: 7})
	if err != nil {
		return err
	}

	// Step 1: daily activity profiles (temperature effect removed).
	profiles := make([][]float64, len(ds.Series))
	for i, s := range ds.Series {
		r, err := par.Compute(s, ds.Temperature)
		if err != nil {
			return err
		}
		p := make([]float64, timeseries.HoursPerDay)
		copy(p, r.Profile[:])
		profiles[i] = p
	}

	// Step 2: cluster the profiles.
	res, err := kmeans.Run(profiles, kmeans.Config{K: k, Seed: 7})
	if err != nil {
		return err
	}
	fmt.Printf("segmented %d consumers into %d groups (%d k-means iterations, inertia %.2f)\n\n",
		len(ds.Series), k, res.Iterations, res.Inertia)

	// Step 3: describe each segment.
	for c := 0; c < k; c++ {
		centroid := res.Centroids[c]
		peakHour, peakVal := 0, centroid[0]
		troughHour, troughVal := 0, centroid[0]
		var total float64
		for h, v := range centroid {
			total += v
			if v > peakVal {
				peakHour, peakVal = h, v
			}
			if v < troughVal {
				troughHour, troughVal = h, v
			}
		}
		fmt.Printf("segment %d: %d consumers\n", c+1, res.Sizes[c])
		fmt.Printf("  daily habitual energy: %.1f kWh\n", total)
		fmt.Printf("  peak %.2f kWh at %02d:00, trough %.2f kWh at %02d:00\n",
			peakVal, peakHour, troughVal, troughHour)
		fmt.Printf("  profile: ")
		for _, v := range centroid {
			fmt.Print(spark(v, troughVal, peakVal))
		}
		fmt.Println()
		switch {
		case peakHour >= 17 && peakHour <= 21:
			fmt.Println("  -> evening-peak segment: prime target for time-of-use pricing")
		case peakHour >= 9 && peakHour <= 16:
			fmt.Println("  -> daytime segment: candidates for solar self-consumption programs")
		default:
			fmt.Println("  -> off-peak segment: already grid-friendly")
		}
		fmt.Println()
	}
	return nil
}

// spark renders one profile value as a sparkline character.
func spark(v, lo, hi float64) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	if hi <= lo {
		return string(ramp[0])
	}
	i := int((v - lo) / (hi - lo) * float64(len(ramp)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(ramp) {
		i = len(ramp) - 1
	}
	return string(ramp[i])
}
