// Streaming anomaly alerts: the paper's §6 future-work scenario —
// "real-time applications using high-frequency smart meters, such as
// alerts due to unusual consumption readings, using data stream
// processing technologies".
//
// The example trains per-household profiles on one year of history
// (PAR daily profile + 3-line thermal gradients), then streams a second
// year with injected anomalies through the stream processor and prints
// the alerts it raises.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/stream"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Train/test: the SAME 12 households over two different weather
	// years.
	history, live, err := seed.GeneratePair(
		seed.Config{Consumers: 12, Days: 365, Seed: 21}, 99)
	if err != nil {
		return err
	}
	fmt.Println("training per-household profiles on 1 year of history...")
	profiles, err := stream.TrainProfiles(history, 6)
	if err != nil {
		return err
	}
	anomalies := injectAnomalies(live, 5, 33)

	// Stream the year through the processor.
	proc, err := stream.NewProcessor(stream.NewProfileDetector(profiles), 4)
	if err != nil {
		return err
	}
	events := make(chan stream.Event, 4096)
	alerts := make(chan stream.Alert, 4096)
	go stream.Replay(live, events)
	done := make(chan error, 1)
	go func() { done <- proc.Run(events, alerts) }()

	fmt.Printf("streaming %d households x 1 year with %d injected anomalies...\n\n",
		len(live.Series), len(anomalies))
	caught := map[int]bool{}
	var shown int
	for a := range alerts {
		for i, an := range anomalies {
			if an.id == a.Event.ID && an.hour == a.Event.Hour {
				caught[i] = true
			}
		}
		if shown < 8 {
			shown++
			day, hour := a.Event.Hour/24, a.Event.Hour%24
			fmt.Printf("ALERT household %d, day %d %02d:00: read %.2f kWh, expected %.2f (%.1fx tolerance)\n",
				a.Event.ID, day, hour, a.Event.Consumption, a.Expected, a.Score)
		}
	}
	if err := <-done; err != nil {
		return err
	}
	processed, alerted := proc.Stats()
	fmt.Printf("\nprocessed %d readings, raised %d alerts (%.4f%%)\n",
		processed, alerted, 100*float64(alerted)/float64(processed))
	fmt.Printf("caught %d of %d injected anomalies\n", len(caught), len(anomalies))
	return nil
}

type anomaly struct {
	id   timeseries.ID
	hour int
}

// injectAnomalies adds n gross consumption spikes at random positions.
func injectAnomalies(ds *timeseries.Dataset, n int, seedVal int64) []anomaly {
	rng := rand.New(rand.NewSource(seedVal))
	out := make([]anomaly, 0, n)
	for i := 0; i < n; i++ {
		s := ds.Series[rng.Intn(len(ds.Series))]
		h := rng.Intn(len(s.Readings))
		s.Readings[h] += 30 + rng.Float64()*20
		out = append(out, anomaly{id: s.ID, hour: h})
	}
	return out
}
