// Quickstart: generate a year of realistic smart meter data and run
// all four benchmark tasks through the column-store engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/generator"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Synthesize a small seed and prepare the paper's data generator.
	seedDS, err := seed.Generate(seed.Config{Consumers: 20, Days: 365, Seed: 1})
	if err != nil {
		return err
	}
	gen, err := generator.New(seedDS, generator.Config{Clusters: 5, Seed: 1})
	if err != nil {
		return err
	}

	// 2. Generate 50 synthetic consumers and write them as CSV.
	ds, err := gen.Dataset(50, seedDS.Temperature)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	src, err := meterdata.WriteUnpartitioned(dir+"/data", ds, meterdata.FormatReadingPerLine)
	if err != nil {
		return err
	}

	// 3. Load into the fastest single-node engine and run every task.
	eng := colstore.New(dir + "/colstore")
	st, err := eng.Load(src)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d consumers, %d readings (%.1f MiB of segments)\n\n",
		st.Consumers, st.Readings, float64(st.StorageBytes)/(1<<20))

	for _, task := range core.Tasks {
		res, err := eng.Run(core.Spec{Task: task, K: 3, Workers: 4})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s -> %d per-consumer results\n", task, res.Count())
	}

	// 4. Peek at one consumer's analytics.
	res, err := eng.Run(core.Spec{Task: core.TaskThreeLine})
	if err != nil {
		return err
	}
	r := res.ThreeLines[0]
	fmt.Printf("\nconsumer %d thermal profile:\n", r.ID)
	fmt.Printf("  heating gradient: %.3f kWh per degree colder\n", r.HeatingGradient)
	fmt.Printf("  cooling gradient: %.3f kWh per degree warmer\n", r.CoolingGradient)
	fmt.Printf("  base load:        %.3f kWh (always-on appliances)\n", r.BaseLoad)
	fmt.Printf("  comfort band:     %.1f C to %.1f C\n", r.High.Break1, r.High.Break2)
	return nil
}
