// Consumer feedback: the consumer-oriented application class from the
// paper's §2.1 — analyze one household and print personalized
// energy-saving feedback derived from the 3-line model, the PAR daily
// profile and the consumption histogram.
//
//	go run ./examples/consumerfeedback
package main

import (
	"fmt"
	"log"

	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/threeline"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small neighbourhood: the first household is "ours", the rest are
	// the comparison group.
	ds, err := seed.Generate(seed.Config{Consumers: 30, Days: 365, Seed: 99})
	if err != nil {
		return err
	}
	me := ds.Series[0]

	fmt.Printf("=== energy report for household %d ===\n\n", me.ID)

	// Overall usage vs the neighbourhood.
	myMean, err := stats.Mean(me.Readings)
	if err != nil {
		return err
	}
	var others stats.Moments
	for _, s := range ds.Series[1:] {
		m, err := stats.Mean(s.Readings)
		if err != nil {
			return err
		}
		others.Add(m)
	}
	fmt.Printf("average hourly use: %.2f kWh (neighbourhood: %.2f kWh)\n", myMean, others.Mean())
	if myMean > others.Mean()*1.2 {
		fmt.Println("  -> you use over 20% more than similar homes")
	}

	// Thermal sensitivity (3-line).
	tl, err := threeline.Compute(me, ds.Temperature)
	if err != nil {
		return err
	}
	fmt.Printf("\nthermal sensitivity (3-line model):\n")
	fmt.Printf("  heating: %.3f kWh per degree below %.1f C\n", tl.HeatingGradient, tl.High.Break1)
	fmt.Printf("  cooling: %.3f kWh per degree above %.1f C\n", tl.CoolingGradient, tl.High.Break2)
	fmt.Printf("  base load: %.3f kWh\n", tl.BaseLoad)
	if tl.CoolingGradient > 0.15 {
		fmt.Println("  -> high cooling gradient: check AC efficiency or raise the set point")
	}
	if tl.HeatingGradient > 0.3 {
		fmt.Println("  -> high heating gradient: consider insulation or a lower heating set point")
	}
	if tl.BaseLoad > 0.5 {
		fmt.Println("  -> large always-on load: look for idle appliances")
	}

	// Daily habits (PAR).
	pr, err := par.Compute(me, ds.Temperature)
	if err != nil {
		return err
	}
	peakHour, peakVal := 0, pr.Profile[0]
	for h, v := range pr.Profile {
		if v > peakVal {
			peakHour, peakVal = h, v
		}
	}
	fmt.Printf("\ndaily habits (PAR profile, temperature removed):\n")
	fmt.Printf("  peak habitual use: %.2f kWh at %02d:00\n", peakVal, peakHour)
	if peakHour >= 17 && peakHour <= 20 {
		fmt.Println("  -> your peak coincides with grid peak pricing; shifting laundry/dishwashing later saves money")
	}

	// Variability (histogram).
	h, err := histogram.Compute(me)
	if err != nil {
		return err
	}
	bucket, count := h.Histogram.Mode()
	edges := h.Histogram.Edges()
	fmt.Printf("\nconsumption variability (10-bucket histogram):\n")
	fmt.Printf("  most hours (%d of %d) fall in [%.2f, %.2f] kWh\n",
		count, h.Histogram.Total(), edges[bucket], edges[bucket+1])
	fmt.Printf("  distribution entropy: %.2f nats\n", h.Histogram.Entropy())
	return nil
}
