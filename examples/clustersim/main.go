// Cluster simulation: run the distributed engines (the Hive and Spark
// analogues) side by side on a simulated 8-node cluster, compare their
// run times, network traffic and memory on the same workload, and show
// the effect of the data format — a miniature of the paper's §5.4.
//
//	go run ./examples/clustersim
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/engine/mapreduce"
	"github.com/smartmeter/smartbench/internal/engine/rdd"
	"github.com/smartmeter/smartbench/internal/generator"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate a workload with the paper's data generator.
	seedDS, err := seed.Generate(seed.Config{Consumers: 15, Days: 180, Seed: 3})
	if err != nil {
		return err
	}
	gen, err := generator.New(seedDS, generator.Config{Clusters: 5, Seed: 3})
	if err != nil {
		return err
	}
	ds, err := gen.Dataset(60, seedDS.Temperature)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "clustersim-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Write both cluster formats.
	format1, err := meterdata.WriteUnpartitioned(dir+"/f1", ds, meterdata.FormatReadingPerLine)
	if err != nil {
		return err
	}
	format2, err := meterdata.WriteUnpartitioned(dir+"/f2", ds, meterdata.FormatSeriesPerLine)
	if err != nil {
		return err
	}

	for _, f := range []struct {
		name string
		src  *meterdata.Source
	}{
		{"format 1 (reading per line, shuffle needed)", format1},
		{"format 2 (series per line, map-only)", format2},
	} {
		fmt.Printf("== %s ==\n", f.name)
		if err := compare(f.src); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func compare(src *meterdata.Source) error {
	cluster, err := distsim.New(distsim.Config{
		Nodes: 8, SlotsPerNode: 4,
		TransferLatency: 50 * time.Microsecond,
		BytesPerSecond:  1 << 30,
	})
	if err != nil {
		return err
	}
	fsys, err := dfs.New(cluster, dfs.WithBlockSize(128<<10))
	if err != nil {
		return err
	}
	hive := mapreduce.New(fsys)
	spark := rdd.New(fsys)
	if _, err := hive.Load(src); err != nil {
		return err
	}
	if _, err := spark.Load(src); err != nil {
		return err
	}

	fmt.Printf("  %-10s  %-12s %-14s %-12s  %-12s %-14s %-12s\n",
		"task", "spark", "spark net", "spark mem", "hive", "hive net", "hive mem")
	for _, task := range core.Tasks {
		row := fmt.Sprintf("  %-10s", task)
		for _, eng := range []core.Engine{spark, hive} {
			cluster.ResetStats()
			start := time.Now()
			res, err := eng.Run(core.Spec{Task: task, K: 5})
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			st := cluster.Stats()
			row += fmt.Sprintf("  %-12s %-14s %-12s",
				elapsed.Round(time.Millisecond),
				fmt.Sprintf("%.1f MiB", float64(st.BytesMoved)/(1<<20)),
				fmt.Sprintf("%.1f MiB", float64(st.PeakMemory())/(1<<20)))
			if res.Count() == 0 {
				return fmt.Errorf("%s produced no results", eng.Name())
			}
		}
		fmt.Println(row)
	}
	return nil
}
